// Package pagefile persists a GiST to a page-structured file: one fixed
// -size page per tree node, bounding predicates serialized through the
// access methods' PredicateCodec in exactly the float-word layout the
// paper's Table 3 accounts for. The format makes the paper's fanout
// arithmetic concrete — a node's entries must genuinely fit its page — and
// lets tools (cmd/amdb) analyze previously built indexes without
// rebuilding.
//
// Layout, format version 2 (little endian):
//
//	header page:  magic "BLOBIDX", version byte, pageSize, dim, height,
//	              numPages, rootPage, xjbX, count, method name,
//	              header CRC32 (computed with the CRC field zeroed)
//	node pages:   level uint16, numEntries uint16, page CRC32 (bytes 4:8,
//	              computed with those bytes zeroed); then entries at byte 8:
//	              leaf:  key (dim float64s) + RID int64
//	              inner: predicate (BPWords float64s) + child page uint64
//
// The child page numbers stored on inner pages are file page indices (page
// 0 is the header, node page p lives at file offset (1+p)·pageSize), and
// they double as the page ids a demand-paged Store (OpenPaged) serves to
// the tree — an opened index answers queries by pinning exactly the pages
// a traversal touches.
//
// Version 1 files (magic "BLOBIDX1", no checksums) are not readable; they
// fail with ErrVersion since their eighth byte '1' is not a known version.
package pagefile

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"syscall"

	"blobindex/internal/am"
	"blobindex/internal/geom"
	"blobindex/internal/gist"
	"blobindex/internal/page"
)

const (
	magic   = "BLOBIDX"
	version = 2
)

// headerFixed is the meaningful prefix of the header page: magic, version,
// six uint32 fields, the uint64 count, the 16-byte method name, and the
// header CRC32. The rest of the header page is zero padding.
const headerFixed = len(magic) + 1 + 4*6 + 8 + 16 + 4

// Sentinel errors for the distinguishable failure classes. Loaders and the
// paged store wrap them with context; test with errors.Is. The classes
// matter operationally: a transient error is worth retrying (the store's
// Pin does, with backoff) and maps to 503 at the serving layer, while a
// checksum mismatch means the bytes on disk are wrong — retrying cannot
// help, and serving maps it to 500.
var (
	// ErrBadMagic marks a file that is not a blobindex pagefile at all.
	ErrBadMagic = errors.New("pagefile: bad magic")
	// ErrVersion marks a pagefile of an unsupported format version.
	ErrVersion = errors.New("pagefile: unsupported format version")
	// ErrChecksum marks a header or node page whose CRC32 does not match
	// its contents.
	ErrChecksum = errors.New("pagefile: checksum mismatch")
	// ErrTransient marks a page read that failed for a reason a retry may
	// clear (an injected fault, EINTR/EAGAIN from the OS). Store.Pin
	// retries these with jittered backoff before giving up.
	ErrTransient = errors.New("pagefile: transient read failure")
	// ErrFreed marks a Pin of a page id retired by Free.
	ErrFreed = errors.New("pagefile: page was freed")
)

// header carries the decoded header-page fields.
type header struct {
	pageSize int
	dim      int
	height   int
	numPages int
	rootPage int
	xjbX     int
	count    int
	name     string
}

// readHeader reads and validates the header page from r, which must be
// positioned at the start of the file. On return r is positioned at the
// first node page.
func readHeader(r io.Reader) (header, error) {
	var h header
	fixed := make([]byte, headerFixed)
	if _, err := io.ReadFull(r, fixed); err != nil {
		return h, fmt.Errorf("pagefile: short header: %w", err)
	}
	if string(fixed[:len(magic)]) != magic {
		return h, ErrBadMagic
	}
	if v := fixed[len(magic)]; v != version {
		return h, fmt.Errorf("%w: got %d, want %d", ErrVersion, v, version)
	}
	off := len(magic) + 1
	get32 := func() int {
		v := binary.LittleEndian.Uint32(fixed[off:])
		off += 4
		return int(v)
	}
	h.pageSize = get32()
	h.dim = get32()
	h.height = get32()
	h.numPages = get32()
	h.rootPage = get32()
	h.xjbX = get32()
	h.count = int(binary.LittleEndian.Uint64(fixed[off:]))
	off += 8
	h.name = trimZero(fixed[off : off+16])
	off += 16
	storedCRC := binary.LittleEndian.Uint32(fixed[off:])
	if h.pageSize < 256 || h.dim < 1 || h.numPages < 1 || h.rootPage >= h.numPages {
		return h, fmt.Errorf("pagefile: corrupt header (page=%d dim=%d pages=%d root=%d)",
			h.pageSize, h.dim, h.numPages, h.rootPage)
	}
	// The CRC covers the whole header page with the CRC field zeroed.
	rest := make([]byte, h.pageSize-headerFixed)
	if _, err := io.ReadFull(r, rest); err != nil {
		return h, fmt.Errorf("pagefile: short header page: %w", err)
	}
	binary.LittleEndian.PutUint32(fixed[off:], 0)
	crc := crc32.ChecksumIEEE(fixed)
	crc = crc32.Update(crc, crc32.IEEETable, rest)
	if crc != storedCRC {
		return h, fmt.Errorf("%w: header", ErrChecksum)
	}
	return h, nil
}

// extFor reconstructs the access method an index was built with.
func extFor(h header, opts am.Options) (gist.Extension, am.PredicateCodec, error) {
	if h.xjbX > 0 {
		opts.XJBX = h.xjbX
	}
	ext, err := am.New(am.Kind(h.name), opts)
	if err != nil {
		return nil, nil, err
	}
	codec, ok := ext.(am.PredicateCodec)
	if !ok {
		return nil, nil, fmt.Errorf("pagefile: access method %q has no predicate codec", h.name)
	}
	return ext, codec, nil
}

// decodeNodePage verifies the CRC of one node page and decodes its payload.
// Leaf pages yield flatKeys/rids; inner pages yield preds/children. p is the
// page's file index, used in error messages and bounds checks.
func decodeNodePage(buf []byte, p int, h header, bpWords int, codec am.PredicateCodec) (
	level int, flatKeys []float64, rids []int64, preds []gist.Predicate, children []page.PageID, err error) {
	storedCRC := binary.LittleEndian.Uint32(buf[4:])
	binary.LittleEndian.PutUint32(buf[4:], 0)
	if crc32.ChecksumIEEE(buf) != storedCRC {
		return 0, nil, nil, nil, nil, fmt.Errorf("%w: page %d", ErrChecksum, p)
	}
	level = int(binary.LittleEndian.Uint16(buf[0:]))
	entries := int(binary.LittleEndian.Uint16(buf[2:]))
	pos := 8
	if level == 0 {
		if pos+entries*(h.dim*8+8) > h.pageSize {
			return 0, nil, nil, nil, nil, fmt.Errorf("pagefile: leaf page %d overflows", p)
		}
		flatKeys = make([]float64, 0, entries*h.dim)
		rids = make([]int64, 0, entries)
		for i := 0; i < entries; i++ {
			for d := 0; d < h.dim; d++ {
				flatKeys = append(flatKeys, math.Float64frombits(binary.LittleEndian.Uint64(buf[pos:])))
				pos += 8
			}
			rids = append(rids, int64(binary.LittleEndian.Uint64(buf[pos:])))
			pos += 8
		}
		return level, flatKeys, rids, nil, nil, nil
	}
	if pos+entries*(bpWords*8+8) > h.pageSize {
		return 0, nil, nil, nil, nil, fmt.Errorf("pagefile: inner page %d overflows", p)
	}
	words := make([]float64, bpWords)
	preds = make([]gist.Predicate, 0, entries)
	children = make([]page.PageID, 0, entries)
	for i := 0; i < entries; i++ {
		for wi := 0; wi < bpWords; wi++ {
			words[wi] = math.Float64frombits(binary.LittleEndian.Uint64(buf[pos:]))
			pos += 8
		}
		pred, err := codec.DecodeBP(words, h.dim)
		if err != nil {
			return 0, nil, nil, nil, nil, fmt.Errorf("pagefile: page %d entry %d: %w", p, i, err)
		}
		child := binary.LittleEndian.Uint64(buf[pos:])
		pos += 8
		if child >= uint64(h.numPages) {
			return 0, nil, nil, nil, nil, fmt.Errorf("pagefile: page %d points to page %d of %d",
				p, child, h.numPages)
		}
		preds = append(preds, pred)
		children = append(children, page.PageID(child))
	}
	return level, nil, nil, preds, children, nil
}

// Save writes the tree to path in format version 2. The tree's extension
// must implement am.PredicateCodec (every access method in internal/am
// does). Saving walks the tree through its node store, so a mutated
// demand-paged index can be persisted back out the same way an in-memory
// one is.
//
// Save is crash-atomic: the pages are written to path+".tmp", flushed and
// fsynced, and only then renamed over path (followed by an fsync of the
// directory so the rename itself is durable). A crash or error at any
// point before the rename leaves the previous index at path untouched;
// flush, sync and close failures are returned to the caller instead of
// being swallowed, and the temp file is removed on every error path.
func Save(path string, t *gist.Tree) error {
	codec, ok := t.Ext().(am.PredicateCodec)
	if !ok {
		return fmt.Errorf("pagefile: access method %q has no predicate codec", t.Ext().Name())
	}

	// Assign sequential file page numbers in pre-order. The walk keeps a
	// reference to every node, so even over an evicting store the collected
	// pointers stay valid for the write pass below.
	var nodes []*gist.Node
	index := make(map[page.PageID]uint64)
	if err := t.Walk(func(n *gist.Node, _ gist.Predicate) {
		index[n.ID()] = uint64(len(nodes))
		nodes = append(nodes, n)
	}); err != nil {
		return err
	}

	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := writePages(f, t, codec, nodes, index); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("pagefile: sync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("pagefile: close %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a just-completed rename survives a crash.
// Filesystems that cannot sync directories (returning EINVAL or ENOTSUP)
// are tolerated — the rename is still atomic, just not yet durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil && (errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP)) {
		return nil
	}
	return err
}

// writePages serializes the header and every node page to f through a
// buffered writer, returning the first write, encode or flush error.
func writePages(f *os.File, t *gist.Tree, codec am.PredicateCodec, nodes []*gist.Node, index map[page.PageID]uint64) error {
	pageSize := t.PageSize()
	dim := t.Dim()
	w := bufio.NewWriterSize(f, 1<<20)

	// Header page.
	hdr := make([]byte, pageSize)
	copy(hdr, magic)
	hdr[len(magic)] = version
	off := len(magic) + 1
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(hdr[off:], v)
		off += 4
	}
	put32(uint32(pageSize))
	put32(uint32(dim))
	put32(uint32(t.Height()))
	put32(uint32(len(nodes)))
	put32(uint32(index[t.RootID()]))
	x := 0
	if xe, ok := t.Ext().(interface{ X() int }); ok {
		x = xe.X()
	}
	put32(uint32(x))
	binary.LittleEndian.PutUint64(hdr[off:], uint64(t.Len()))
	off += 8
	name := t.Ext().Name()
	if len(name) > 16 {
		return fmt.Errorf("pagefile: method name %q too long", name)
	}
	copy(hdr[off:off+16], name)
	off += 16
	// CRC over the whole page with the CRC field (still zero) in place.
	binary.LittleEndian.PutUint32(hdr[off:], crc32.ChecksumIEEE(hdr))
	if _, err := w.Write(hdr); err != nil {
		return err
	}

	// Node pages.
	buf := make([]byte, pageSize)
	var words []float64
	for _, n := range nodes {
		for i := range buf {
			buf[i] = 0
		}
		binary.LittleEndian.PutUint16(buf[0:], uint16(n.Level()))
		binary.LittleEndian.PutUint16(buf[2:], uint16(n.NumEntries()))
		pos := 8
		fit := func(need int) error {
			if pos+need > pageSize {
				return fmt.Errorf("pagefile: node %d overflows its page", n.ID())
			}
			return nil
		}
		if n.IsLeaf() {
			for i := 0; i < n.NumEntries(); i++ {
				if err := fit(dim*8 + 8); err != nil {
					return err
				}
				for _, c := range n.LeafKey(i) {
					binary.LittleEndian.PutUint64(buf[pos:], math.Float64bits(c))
					pos += 8
				}
				binary.LittleEndian.PutUint64(buf[pos:], uint64(n.LeafRID(i)))
				pos += 8
			}
		} else {
			bpWords := t.Ext().BPWords(dim)
			for i := 0; i < n.NumEntries(); i++ {
				if err := fit(bpWords*8 + 8); err != nil {
					return err
				}
				words = codec.EncodeBP(words[:0], n.ChildPred(i), dim)
				if len(words) != bpWords {
					return fmt.Errorf("pagefile: %s encoded %d words, BPWords says %d",
						t.Ext().Name(), len(words), bpWords)
				}
				for _, wv := range words {
					binary.LittleEndian.PutUint64(buf[pos:], math.Float64bits(wv))
					pos += 8
				}
				binary.LittleEndian.PutUint64(buf[pos:], index[n.ChildID(i)])
				pos += 8
			}
		}
		// Page CRC over the page with bytes 4:8 (still zero) in place.
		binary.LittleEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(buf))
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return w.Flush()
}

// Load reads a whole tree saved by Save into memory, reconstructing the
// access method from the stored name. opts supplies the parameters that are
// not part of the on-disk format (aMAP sampling, bite restarts) for
// subsequent inserts. For serving queries over a large index without
// materializing it, see OpenPaged.
func Load(path string, opts am.Options) (*gist.Tree, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)

	h, err := readHeader(r)
	if err != nil {
		return nil, err
	}
	ext, codec, err := extFor(h, opts)
	if err != nil {
		return nil, err
	}
	bpWords := ext.BPWords(h.dim)

	type pendingNode struct {
		raw      *gist.RawNode
		children []page.PageID
	}
	pend := make([]pendingNode, h.numPages)
	buf := make([]byte, h.pageSize)
	for p := 0; p < h.numPages; p++ {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("pagefile: short page %d: %w", p, err)
		}
		level, flat, rids, preds, children, err := decodeNodePage(buf, p, h, bpWords, codec)
		if err != nil {
			return nil, err
		}
		rn := &gist.RawNode{Level: level, RIDs: rids, Preds: preds}
		for i := range rids {
			rn.Keys = append(rn.Keys, geom.Vector(flat[i*h.dim:(i+1)*h.dim]))
		}
		pend[p] = pendingNode{raw: rn, children: children}
	}
	// Link children.
	for p := range pend {
		for _, c := range pend[p].children {
			pend[p].raw.Children = append(pend[p].raw.Children, pend[c].raw)
		}
	}
	root := pend[h.rootPage].raw
	if root.Level+1 != h.height {
		return nil, fmt.Errorf("pagefile: root level %d does not match height %d",
			root.Level, h.height)
	}

	tree, err := gist.FromRaw(ext, gist.Config{Dim: h.dim, PageSize: h.pageSize}, root)
	if err != nil {
		return nil, err
	}
	if tree.Len() != h.count {
		return nil, fmt.Errorf("pagefile: loaded %d points, header says %d", tree.Len(), h.count)
	}
	return tree, nil
}

func trimZero(b []byte) string {
	for i, c := range b {
		if c == 0 {
			return string(b[:i])
		}
	}
	return string(b)
}

// FileSizePages returns the number of pages (including the header) a saved
// tree occupies, for reporting.
func FileSizePages(t *gist.Tree) int { return t.NumPages() + 1 }

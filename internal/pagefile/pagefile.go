// Package pagefile persists a GiST to a page-structured file: one fixed
// -size page per tree node, bounding predicates serialized through the
// access methods' PredicateCodec in exactly the float-word layout the
// paper's Table 3 accounts for. The format makes the paper's fanout
// arithmetic concrete — a node's entries must genuinely fit its page — and
// lets tools (cmd/amdb) analyze previously built indexes without
// rebuilding.
//
// Layout (little endian):
//
//	header page:  magic "BLOBIDX1", pageSize, dim, height, numPages,
//	              rootPage, xjbX, count, method name
//	node pages:   level uint16, numEntries uint16, pad; then entries:
//	              leaf:  key (dim float64s) + RID int64
//	              inner: predicate (BPWords float64s) + child page uint64
package pagefile

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"blobindex/internal/am"
	"blobindex/internal/geom"
	"blobindex/internal/gist"
)

const magic = "BLOBIDX1"

const headerFixed = len(magic) + 4*6 + 8 + 16 // fixed header bytes

// Save writes the tree to path. The tree's extension must implement
// am.PredicateCodec (every access method in internal/am does).
func Save(path string, t *gist.Tree) error {
	codec, ok := t.Ext().(am.PredicateCodec)
	if !ok {
		return fmt.Errorf("pagefile: access method %q has no predicate codec", t.Ext().Name())
	}
	pageSize := t.PageSize()
	dim := t.Dim()

	// Assign sequential page numbers in pre-order.
	var nodes []*gist.Node
	index := make(map[*gist.Node]uint64)
	t.Walk(func(n *gist.Node, _ gist.Predicate) {
		index[n] = uint64(len(nodes))
		nodes = append(nodes, n)
	})

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriterSize(f, 1<<20)

	// Header page.
	hdr := make([]byte, pageSize)
	copy(hdr, magic)
	off := len(magic)
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(hdr[off:], v)
		off += 4
	}
	put32(uint32(pageSize))
	put32(uint32(dim))
	put32(uint32(t.Height()))
	put32(uint32(len(nodes)))
	put32(uint32(index[t.Root()]))
	x := 0
	if xe, ok := t.Ext().(interface{ X() int }); ok {
		x = xe.X()
	}
	put32(uint32(x))
	binary.LittleEndian.PutUint64(hdr[off:], uint64(t.Len()))
	off += 8
	name := t.Ext().Name()
	if len(name) > 16 {
		return fmt.Errorf("pagefile: method name %q too long", name)
	}
	copy(hdr[off:off+16], name)
	if _, err := w.Write(hdr); err != nil {
		return err
	}

	// Node pages.
	buf := make([]byte, pageSize)
	var words []float64
	for _, n := range nodes {
		for i := range buf {
			buf[i] = 0
		}
		binary.LittleEndian.PutUint16(buf[0:], uint16(n.Level()))
		binary.LittleEndian.PutUint16(buf[2:], uint16(n.NumEntries()))
		pos := 8
		fit := func(need int) error {
			if pos+need > pageSize {
				return fmt.Errorf("pagefile: node %d overflows its page", n.ID())
			}
			return nil
		}
		if n.IsLeaf() {
			for i := 0; i < n.NumEntries(); i++ {
				if err := fit(dim*8 + 8); err != nil {
					return err
				}
				for _, c := range n.LeafKey(i) {
					binary.LittleEndian.PutUint64(buf[pos:], math.Float64bits(c))
					pos += 8
				}
				binary.LittleEndian.PutUint64(buf[pos:], uint64(n.LeafRID(i)))
				pos += 8
			}
		} else {
			bpWords := t.Ext().BPWords(dim)
			for i := 0; i < n.NumEntries(); i++ {
				if err := fit(bpWords*8 + 8); err != nil {
					return err
				}
				words = codec.EncodeBP(words[:0], n.ChildPred(i), dim)
				if len(words) != bpWords {
					return fmt.Errorf("pagefile: %s encoded %d words, BPWords says %d",
						t.Ext().Name(), len(words), bpWords)
				}
				for _, wv := range words {
					binary.LittleEndian.PutUint64(buf[pos:], math.Float64bits(wv))
					pos += 8
				}
				binary.LittleEndian.PutUint64(buf[pos:], index[n.Child(i)])
				pos += 8
			}
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return w.Flush()
}

// Load reads a tree saved by Save, reconstructing the access method from
// the stored name. opts supplies the parameters that are not part of the
// on-disk format (aMAP sampling, bite restarts) for subsequent inserts.
func Load(path string, opts am.Options) (*gist.Tree, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)

	// Header: read the fixed prefix first to learn the page size.
	fixed := make([]byte, headerFixed)
	if _, err := io.ReadFull(r, fixed); err != nil {
		return nil, fmt.Errorf("pagefile: short header: %w", err)
	}
	if string(fixed[:len(magic)]) != magic {
		return nil, fmt.Errorf("pagefile: bad magic")
	}
	off := len(magic)
	get32 := func() int {
		v := binary.LittleEndian.Uint32(fixed[off:])
		off += 4
		return int(v)
	}
	pageSize := get32()
	dim := get32()
	height := get32()
	numPages := get32()
	rootPage := get32()
	xjbX := get32()
	count := int(binary.LittleEndian.Uint64(fixed[off:]))
	off += 8
	name := trimZero(fixed[off : off+16])
	if pageSize < 256 || dim < 1 || numPages < 1 || rootPage >= numPages {
		return nil, fmt.Errorf("pagefile: corrupt header (page=%d dim=%d pages=%d root=%d)",
			pageSize, dim, numPages, rootPage)
	}
	// Skip the rest of the header page.
	if _, err := r.Discard(pageSize - headerFixed); err != nil {
		return nil, err
	}

	if xjbX > 0 {
		opts.XJBX = xjbX
	}
	ext, err := am.New(am.Kind(name), opts)
	if err != nil {
		return nil, err
	}
	codec, ok := ext.(am.PredicateCodec)
	if !ok {
		return nil, fmt.Errorf("pagefile: access method %q has no predicate codec", name)
	}
	bpWords := ext.BPWords(dim)

	type pendingNode struct {
		raw      *gist.RawNode
		children []uint64
	}
	pend := make([]pendingNode, numPages)
	buf := make([]byte, pageSize)
	for p := 0; p < numPages; p++ {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("pagefile: short page %d: %w", p, err)
		}
		level := int(binary.LittleEndian.Uint16(buf[0:]))
		entries := int(binary.LittleEndian.Uint16(buf[2:]))
		pos := 8
		rn := &gist.RawNode{Level: level}
		if level == 0 {
			if pos+entries*(dim*8+8) > pageSize {
				return nil, fmt.Errorf("pagefile: leaf page %d overflows", p)
			}
			for i := 0; i < entries; i++ {
				key := make(geom.Vector, dim)
				for d := 0; d < dim; d++ {
					key[d] = math.Float64frombits(binary.LittleEndian.Uint64(buf[pos:]))
					pos += 8
				}
				rid := int64(binary.LittleEndian.Uint64(buf[pos:]))
				pos += 8
				rn.Keys = append(rn.Keys, key)
				rn.RIDs = append(rn.RIDs, rid)
			}
		} else {
			if pos+entries*(bpWords*8+8) > pageSize {
				return nil, fmt.Errorf("pagefile: inner page %d overflows", p)
			}
			words := make([]float64, bpWords)
			for i := 0; i < entries; i++ {
				for wi := 0; wi < bpWords; wi++ {
					words[wi] = math.Float64frombits(binary.LittleEndian.Uint64(buf[pos:]))
					pos += 8
				}
				pred, err := codec.DecodeBP(words, dim)
				if err != nil {
					return nil, fmt.Errorf("pagefile: page %d entry %d: %w", p, i, err)
				}
				child := binary.LittleEndian.Uint64(buf[pos:])
				pos += 8
				if child >= uint64(numPages) {
					return nil, fmt.Errorf("pagefile: page %d points to page %d of %d",
						p, child, numPages)
				}
				rn.Preds = append(rn.Preds, pred)
				pend[p].children = append(pend[p].children, child)
			}
		}
		pend[p].raw = rn
	}
	// Link children.
	for p := range pend {
		for _, c := range pend[p].children {
			pend[p].raw.Children = append(pend[p].raw.Children, pend[c].raw)
		}
	}
	root := pend[rootPage].raw
	if root.Level+1 != height {
		return nil, fmt.Errorf("pagefile: root level %d does not match height %d",
			root.Level, height)
	}

	tree, err := gist.FromRaw(ext, gist.Config{Dim: dim, PageSize: pageSize}, root)
	if err != nil {
		return nil, err
	}
	if tree.Len() != count {
		return nil, fmt.Errorf("pagefile: loaded %d points, header says %d", tree.Len(), count)
	}
	return tree, nil
}

func trimZero(b []byte) string {
	for i, c := range b {
		if c == 0 {
			return string(b[:i])
		}
	}
	return string(b)
}

// FileSizePages returns the number of pages (including the header) a saved
// tree occupies, for reporting.
func FileSizePages(t *gist.Tree) int { return t.NumPages() + 1 }

package pagefile

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"blobindex/internal/am"
	"blobindex/internal/geom"
	"blobindex/internal/gist"
	"blobindex/internal/str"
)

// FuzzLoad feeds arbitrary bytes to the loader: it must never panic —
// corrupt files yield errors, and the rare mutation that still parses must
// produce a structurally valid tree (FromRaw re-checks integrity).
func FuzzLoad(f *testing.F) {
	// Seed with a valid index file and a few degenerate inputs.
	rng := rand.New(rand.NewSource(1))
	pts := make([]gist.Point, 400)
	for i := range pts {
		v := make(geom.Vector, 3)
		for d := range v {
			v[d] = rng.Float64() * 100
		}
		pts[i] = gist.Point{Key: v, RID: int64(i)}
	}
	ext, err := am.New(am.KindXJB, am.Options{XJBX: 4})
	if err != nil {
		f.Fatal(err)
	}
	cfg := gist.Config{Dim: 3, PageSize: 1024}
	probe, err := gist.New(ext, cfg)
	if err != nil {
		f.Fatal(err)
	}
	str.Order(pts, probe.LeafCapacity())
	tree, err := gist.BulkLoad(ext, cfg, pts, 1.0)
	if err != nil {
		f.Fatal(err)
	}
	path := filepath.Join(f.TempDir(), "seed.idx")
	if err := Save(path, tree); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:40])
	f.Add([]byte("BLOBIDX1 garbage"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		p := filepath.Join(t.TempDir(), "fuzz.idx")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Skip()
		}
		loaded, err := Load(p, am.Options{})
		if err != nil {
			return // rejected, fine
		}
		// Accepted: the tree must be internally consistent.
		if err := loaded.CheckIntegrity(); err != nil {
			t.Fatalf("loader accepted an inconsistent tree: %v", err)
		}
	})
}

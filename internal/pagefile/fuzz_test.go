package pagefile

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"blobindex/internal/am"
	"blobindex/internal/geom"
	"blobindex/internal/gist"
	"blobindex/internal/nn"
	"blobindex/internal/str"
)

// FuzzLoad feeds arbitrary bytes to the loader: it must never panic —
// corrupt files yield errors, and the rare mutation that still parses must
// produce a structurally valid tree (FromRaw re-checks integrity).
func FuzzLoad(f *testing.F) {
	// Seed with a valid index file and a few degenerate inputs.
	rng := rand.New(rand.NewSource(1))
	pts := make([]gist.Point, 400)
	for i := range pts {
		v := make(geom.Vector, 3)
		for d := range v {
			v[d] = rng.Float64() * 100
		}
		pts[i] = gist.Point{Key: v, RID: int64(i)}
	}
	ext, err := am.New(am.KindXJB, am.Options{XJBX: 4})
	if err != nil {
		f.Fatal(err)
	}
	cfg := gist.Config{Dim: 3, PageSize: 1024}
	probe, err := gist.New(ext, cfg)
	if err != nil {
		f.Fatal(err)
	}
	str.Order(pts, probe.LeafCapacity())
	tree, err := gist.BulkLoad(ext, cfg, pts, 1.0)
	if err != nil {
		f.Fatal(err)
	}
	path := filepath.Join(f.TempDir(), "seed.idx")
	if err := Save(path, tree); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	for _, seed := range fuzzSeeds(valid) {
		f.Add(seed)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		p := filepath.Join(t.TempDir(), "fuzz.idx")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Skip()
		}
		loaded, err := Load(p, am.Options{})
		if err != nil {
			return // rejected, fine
		}
		// Accepted: the tree must be internally consistent.
		if err := loaded.CheckIntegrity(); err != nil {
			t.Fatalf("loader accepted an inconsistent tree: %v", err)
		}
	})
}

// fuzzSeeds derives the corpus from one valid file: truncations at the
// magic, mid-header, header/page boundary and mid-pages, plus single-byte
// corruptions of the version, header CRC region and page payloads.
func fuzzSeeds(valid []byte) [][]byte {
	flip := func(off int, bit byte) []byte {
		b := append([]byte(nil), valid...)
		if off < len(b) {
			b[off] ^= bit
		}
		return b
	}
	return [][]byte{
		valid,
		valid[:len(valid)/2],
		valid[:40],
		valid[:7],                  // magic only
		valid[:1024],               // header page only, no nodes
		flip(7, 0xff),              // version byte
		flip(45, 0x40),             // method name (header CRC must catch it)
		flip(56, 0x01),             // header CRC itself
		flip(1024+2, 0x01),         // first node page: entry count
		flip(1024+300, 0x80),       // first node page: payload
		[]byte("BLOBIDX1 garbage"), // v1 magic: rejected as unknown version
		[]byte("BLOBIDX\x02 short"),
		{},
	}
}

// FuzzOpenPaged feeds the same corpus to the demand-paged open path: the
// header is validated eagerly, node pages lazily at pin time, and neither
// stage may panic. Queries over an accepted file must either succeed or
// fail cleanly when a pinned page turns out corrupt or missing.
func FuzzOpenPaged(f *testing.F) {
	rng := rand.New(rand.NewSource(2))
	pts := make([]gist.Point, 300)
	for i := range pts {
		v := make(geom.Vector, 2)
		for d := range v {
			v[d] = rng.Float64() * 100
		}
		pts[i] = gist.Point{Key: v, RID: int64(i)}
	}
	ext, err := am.New(am.KindRTree, am.Options{})
	if err != nil {
		f.Fatal(err)
	}
	cfg := gist.Config{Dim: 2, PageSize: 1024}
	probe, err := gist.New(ext, cfg)
	if err != nil {
		f.Fatal(err)
	}
	str.Order(pts, probe.LeafCapacity())
	tree, err := gist.BulkLoad(ext, cfg, pts, 1.0)
	if err != nil {
		f.Fatal(err)
	}
	path := filepath.Join(f.TempDir(), "seed.idx")
	if err := Save(path, tree); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	for _, seed := range fuzzSeeds(valid) {
		f.Add(seed)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		p := filepath.Join(t.TempDir(), "fuzz.idx")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Skip()
		}
		paged, store, err := OpenPaged(p, am.Options{}, 4)
		if err != nil {
			return // rejected at the header, fine
		}
		defer store.Close()
		// Drive a query through the lazy pin path; corrupt pages surface as
		// pin errors (empty results), never panics.
		nn.Search(paged, geom.Vector{50, 50}, 10, nil)
		st := store.PoolStats()
		if st.Pinned != 0 {
			t.Fatalf("query left %d pages pinned", st.Pinned)
		}
	})
}

package pagefile

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := &Manifest{
		Method:      "rtree",
		Dim:         5,
		PageSize:    4096,
		XJBX:        3,
		SegmentGens: []uint64{1, 2, 5},
		WALGens:     []uint64{5, 6},
		Tombstones:  []Tombstone{{RID: 42, Watermark: 6}, {RID: 7, Watermark: 3}},
	}
	if err := WriteManifest(dir, m); err != nil {
		t.Fatalf("WriteManifest: %v", err)
	}
	got, err := ReadManifest(dir)
	if err != nil {
		t.Fatalf("ReadManifest: %v", err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, m)
	}
	// No temp file left behind.
	if _, err := os.Stat(filepath.Join(dir, ManifestName+".tmp")); !os.IsNotExist(err) {
		t.Fatalf("temp manifest left behind: %v", err)
	}
}

func TestManifestEmptySegments(t *testing.T) {
	dir := t.TempDir()
	m := &Manifest{Method: "jb", Dim: 2, PageSize: 512, WALGens: []uint64{1}}
	if err := WriteManifest(dir, m); err != nil {
		t.Fatalf("WriteManifest: %v", err)
	}
	got, err := ReadManifest(dir)
	if err != nil {
		t.Fatalf("ReadManifest: %v", err)
	}
	if len(got.SegmentGens) != 0 || len(got.Tombstones) != 0 || len(got.WALGens) != 1 {
		t.Fatalf("got %+v", got)
	}
}

func TestManifestOverwriteIsAtomicSwap(t *testing.T) {
	dir := t.TempDir()
	m1 := &Manifest{Method: "rtree", Dim: 3, PageSize: 1024, WALGens: []uint64{1}}
	if err := WriteManifest(dir, m1); err != nil {
		t.Fatal(err)
	}
	m2 := &Manifest{Method: "rtree", Dim: 3, PageSize: 1024,
		SegmentGens: []uint64{1}, WALGens: []uint64{2}}
	if err := WriteManifest(dir, m2); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m2, got) {
		t.Fatalf("got %+v, want %+v", got, m2)
	}
}

func TestManifestCorruption(t *testing.T) {
	dir := t.TempDir()
	m := &Manifest{Method: "rtree", Dim: 5, PageSize: 4096,
		SegmentGens: []uint64{1}, WALGens: []uint64{2}}
	if err := WriteManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, ManifestName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Flip a byte in the middle: CRC must catch it.
	bad := append([]byte(nil), raw...)
	bad[len(bad)/2] ^= 0xFF
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(dir); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupt manifest: err = %v, want ErrChecksum", err)
	}

	// Truncated file.
	if err := os.WriteFile(path, raw[:len(raw)-6], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(dir); err == nil {
		t.Fatal("truncated manifest accepted")
	}

	// Not a manifest at all.
	if err := os.WriteFile(path, []byte("definitely not a manifest file, padded past the fixed header size"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(dir); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: err = %v, want ErrBadMagic", err)
	}
}

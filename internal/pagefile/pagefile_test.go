package pagefile

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"blobindex/internal/am"
	"blobindex/internal/geom"
	"blobindex/internal/gist"
	"blobindex/internal/nn"
	"blobindex/internal/str"
)

func buildTree(t *testing.T, kind am.Kind, n, dim, pageSize int) (*gist.Tree, []gist.Point) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	pts := make([]gist.Point, n)
	for i := range pts {
		v := make(geom.Vector, dim)
		for d := range v {
			v[d] = rng.Float64() * 100
		}
		pts[i] = gist.Point{Key: v, RID: int64(i)}
	}
	ext, err := am.New(kind, am.Options{AMAPSamples: 32, XJBX: 4})
	if err != nil {
		t.Fatal(err)
	}
	cfg := gist.Config{Dim: dim, PageSize: pageSize}
	probe, err := gist.New(ext, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ordered := make([]gist.Point, len(pts))
	copy(ordered, pts)
	str.Order(ordered, probe.LeafCapacity())
	tree, err := gist.BulkLoad(ext, cfg, ordered, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	return tree, pts
}

// Round trip every access method: structure, integrity and search results
// must survive persistence.
func TestSaveLoadRoundTripAllAMs(t *testing.T) {
	dir := t.TempDir()
	for _, kind := range am.Kinds() {
		t.Run(string(kind), func(t *testing.T) {
			tree, pts := buildTree(t, kind, 2500, 3, 2048)
			path := filepath.Join(dir, string(kind)+".idx")
			if err := Save(path, tree); err != nil {
				t.Fatal(err)
			}
			loaded, err := Load(path, am.Options{AMAPSamples: 32})
			if err != nil {
				t.Fatal(err)
			}
			if loaded.Len() != tree.Len() || loaded.Height() != tree.Height() {
				t.Fatalf("shape changed: len %d→%d height %d→%d",
					tree.Len(), loaded.Len(), tree.Height(), loaded.Height())
			}
			if loaded.Ext().Name() != string(kind) {
				t.Fatalf("method changed: %s", loaded.Ext().Name())
			}
			if err := loaded.CheckIntegrity(); err != nil {
				t.Fatalf("integrity: %v", err)
			}
			// Identical query results, identical I/O traces (the predicates
			// round-tripped exactly).
			rng := rand.New(rand.NewSource(8))
			for trial := 0; trial < 10; trial++ {
				q := geom.Vector{rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 100}
				var t1, t2 gist.Trace
				r1 := nn.Search(tree, q, 20, &t1)
				r2 := nn.Search(loaded, q, 20, &t2)
				if len(r1) != len(r2) {
					t.Fatalf("result counts differ")
				}
				for i := range r1 {
					if r1[i].RID != r2[i].RID || r1[i].Dist2 != r2[i].Dist2 {
						t.Fatalf("result %d differs: %+v vs %+v", i, r1[i], r2[i])
					}
				}
				if t1.LeafAccesses() != t2.LeafAccesses() {
					t.Fatalf("leaf accesses differ: %d vs %d — predicates not preserved",
						t1.LeafAccesses(), t2.LeafAccesses())
				}
			}
			_ = pts
		})
	}
}

func TestLoadedTreeAcceptsInserts(t *testing.T) {
	dir := t.TempDir()
	tree, _ := buildTree(t, am.KindRTree, 500, 2, 1024)
	path := filepath.Join(dir, "ins.idx")
	if err := Save(path, tree); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path, am.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		p := gist.Point{Key: geom.Vector{float64(i), float64(i)}, RID: int64(10000 + i)}
		if err := loaded.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	if loaded.Len() != 600 {
		t.Errorf("Len = %d", loaded.Len())
	}
	if err := loaded.CheckIntegrity(); err != nil {
		t.Fatalf("integrity after inserts: %v", err)
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	tree, _ := buildTree(t, am.KindRTree, 300, 2, 1024)
	path := filepath.Join(dir, "c.idx")
	if err := Save(path, tree); err != nil {
		t.Fatal(err)
	}

	corrupt := func(name string, want error, mutate func([]byte)) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		mutate(data)
		bad := filepath.Join(dir, name)
		if err := os.WriteFile(bad, data, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err = Load(bad, am.Options{})
		if err == nil {
			t.Errorf("%s: corruption not detected", name)
		} else if want != nil && !errors.Is(err, want) {
			t.Errorf("%s: got %v, want %v", name, err, want)
		}
	}
	corrupt("magic.idx", ErrBadMagic, func(b []byte) { b[0] = 'X' })
	corrupt("version.idx", ErrVersion, func(b []byte) {
		// The version byte follows the 7-byte magic.
		b[7] = 99
	})
	corrupt("root.idx", nil, func(b []byte) {
		// rootPage field: magic+version(8) + 4*4 bytes in. Caught by the
		// semantic header check before the CRC is even computed.
		b[8+16] = 0xff
		b[8+17] = 0xff
	})
	corrupt("trunc.idx", nil, func(b []byte) {
		// Claim more pages than the file holds.
		b[8+12] = 0xff
	})
	corrupt("name.idx", ErrChecksum, func(b []byte) {
		// A flipped method-name byte passes the semantic checks but fails
		// the header CRC.
		b[8+24+8+3] ^= 0x40
	})
	corrupt("page.idx", ErrChecksum, func(b []byte) {
		// A flipped payload byte in the first node page fails that page's CRC.
		b[1024+100] ^= 0x01
	})
	// Truncated file.
	data, _ := os.ReadFile(path)
	short := filepath.Join(dir, "short.idx")
	if err := os.WriteFile(short, data[:len(data)-100], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(short, am.Options{}); err == nil {
		t.Error("truncated file not detected")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load("/nonexistent/path.idx", am.Options{}); err == nil {
		t.Error("missing file should error")
	}
}

func TestFileSizePages(t *testing.T) {
	tree, _ := buildTree(t, am.KindRTree, 300, 2, 1024)
	if got := FileSizePages(tree); got != tree.NumPages()+1 {
		t.Errorf("FileSizePages = %d", got)
	}
}

func TestXJBXSurvivesRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tree, _ := buildTree(t, am.KindXJB, 1000, 3, 2048)
	path := filepath.Join(dir, "x.idx")
	if err := Save(path, tree); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path, am.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The loaded extension must report the same predicate size (same X).
	if loaded.Ext().BPWords(3) != tree.Ext().BPWords(3) {
		t.Errorf("BPWords changed: %d → %d", tree.Ext().BPWords(3), loaded.Ext().BPWords(3))
	}
}

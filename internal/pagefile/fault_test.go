package pagefile

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"blobindex/internal/am"
	"blobindex/internal/faultio"
	"blobindex/internal/geom"
	"blobindex/internal/nn"
	"blobindex/internal/page"
)

// withInjector returns an OpenPagedIO wrap installing a fault injector with
// the given config (PageSize is filled from the saved file's page size by
// the caller), and a handle to read its stats.
func withInjector(cfg faultio.Config) (wrap func(faultio.File) faultio.File, get func() faultio.Stats) {
	var inj *faultio.Injector
	wrap = func(f faultio.File) faultio.File {
		inj = faultio.Wrap(f, cfg)
		return inj
	}
	get = func() faultio.Stats { return inj.Stats() }
	return wrap, get
}

// queryDigest runs a fixed query set and hashes (RID, Dist2-bits) of every
// result — the golden-workload digest the crash-recovery test compares.
func queryDigest(t *testing.T, search func(q geom.Vector, k int) []nn.Result) uint64 {
	t.Helper()
	h := fnv.New64a()
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 12; trial++ {
		q := geom.Vector{rng.Float64() * 100, rng.Float64() * 100}
		for _, r := range search(q, 50) {
			var buf [16]byte
			for i := 0; i < 8; i++ {
				buf[i] = byte(r.RID >> (8 * i))
				buf[8+i] = byte(math.Float64bits(r.Dist2) >> (8 * i))
			}
			h.Write(buf[:])
		}
	}
	return h.Sum64()
}

// Transient faults below the retry budget are invisible to queries: with
// every page failing twice then reading cleanly, results are identical to
// the fault-free run and the retry counters record the absorbed faults.
func TestPinRetriesTransientFaults(t *testing.T) {
	tree, _ := buildTree(t, am.KindRTree, 800, 2, 1024)
	path := filepath.Join(t.TempDir(), "retry.idx")
	if err := Save(path, tree); err != nil {
		t.Fatal(err)
	}
	wrap, stats := withInjector(faultio.Config{
		Seed:           1,
		PageSize:       1024,
		Rates:          faultio.Rates{Transient: 1.0},
		MaxConsecutive: 2,
	})
	paged, store, err := OpenPagedIO(path, am.Options{}, 0, wrap)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 5; trial++ {
		q := geom.Vector{rng.Float64() * 100, rng.Float64() * 100}
		want := nn.Search(tree, q, 30, nil)
		got, err := nn.SearchCtx(context.Background(), paged, q, 30, nil)
		if err != nil {
			t.Fatalf("trial %d: search failed despite retries: %v", trial, err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d results, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i].RID != want[i].RID || got[i].Dist2 != want[i].Dist2 {
				t.Fatalf("trial %d result %d differs", trial, i)
			}
		}
	}
	st := store.PoolStats()
	if st.Retries == 0 {
		t.Error("no retries recorded despite injected transient faults")
	}
	if st.GaveUp != 0 {
		t.Errorf("gave up %d times with faults under the retry budget", st.GaveUp)
	}
	if got := stats().Transient; got == 0 {
		t.Error("injector reports no injected faults")
	}
	levels := store.RetriesByLevel()
	var sum int64
	for _, v := range levels {
		sum += v
	}
	if sum != st.Retries {
		t.Errorf("per-level retries sum %d != total %d", sum, st.Retries)
	}
}

// A page that never reads cleanly exhausts the bounded retry budget; the
// pin fails with ErrTransient (and the facade alias matches it), and the
// gave-up counter records the surrender.
func TestPinGivesUpAfterBoundedRetries(t *testing.T) {
	tree, _ := buildTree(t, am.KindRTree, 800, 2, 1024)
	path := filepath.Join(t.TempDir(), "giveup.idx")
	if err := Save(path, tree); err != nil {
		t.Fatal(err)
	}
	wrap, _ := withInjector(faultio.Config{
		Seed:     2,
		PageSize: 1024,
		Rates:    faultio.Rates{Transient: 1.0}, // no cap: never succeeds
	})
	paged, store, err := OpenPagedIO(path, am.Options{}, 0, wrap)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	_, err = nn.SearchCtx(context.Background(), paged, geom.Vector{50, 50}, 10, nil)
	if err == nil {
		t.Fatal("search succeeded against a permanently failing file")
	}
	if !errors.Is(err, ErrTransient) {
		t.Errorf("error %v does not match ErrTransient", err)
	}
	st := store.PoolStats()
	if st.GaveUp == 0 {
		t.Error("gave-up counter not incremented")
	}
	if st.Retries != st.GaveUp*(pinAttempts-1) {
		t.Errorf("retries %d, want %d (gaveUp %d × %d retries each)",
			st.Retries, st.GaveUp*(pinAttempts-1), st.GaveUp, pinAttempts-1)
	}
}

// Bit-flip corruption is caught by the page CRC and is NOT retried: the
// error matches ErrChecksum, not ErrTransient, and no retry is burned on
// bytes that are simply wrong.
func TestCorruptReadFailsWithChecksumNoRetry(t *testing.T) {
	tree, _ := buildTree(t, am.KindRTree, 800, 2, 1024)
	path := filepath.Join(t.TempDir(), "corrupt.idx")
	if err := Save(path, tree); err != nil {
		t.Fatal(err)
	}
	wrap, _ := withInjector(faultio.Config{
		Seed:     3,
		PageSize: 1024,
		Rates:    faultio.Rates{Corrupt: 1.0},
	})
	paged, store, err := OpenPagedIO(path, am.Options{}, 0, wrap)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	_, err = nn.SearchCtx(context.Background(), paged, geom.Vector{50, 50}, 10, nil)
	if err == nil {
		t.Fatal("search succeeded over always-corrupting reads")
	}
	if !errors.Is(err, ErrChecksum) {
		t.Errorf("error %v does not match ErrChecksum", err)
	}
	if errors.Is(err, ErrTransient) {
		t.Errorf("corruption misclassified as transient: %v", err)
	}
	st := store.PoolStats()
	if st.Retries != 0 {
		t.Errorf("%d retries burned on a checksum failure", st.Retries)
	}
}

// Satellite: crash mid-Save must never lose the previously saved index.
// The temp file is truncated at randomized offsets (the states a kill
// between the first tmp write and the rename leaves behind) and the
// original index must still open and serve the golden workload digest
// unchanged — because Save never writes through the live path.
func TestSaveCrashMidSaveKeepsOldIndex(t *testing.T) {
	dir := t.TempDir()
	tree, pts := buildTree(t, am.KindJB, 900, 2, 1024)
	path := filepath.Join(dir, "crash.idx")
	if err := Save(path, tree); err != nil {
		t.Fatal(err)
	}
	golden := queryDigest(t, func(q geom.Vector, k int) []nn.Result {
		return nn.Search(tree, q, k, nil)
	})

	// The bytes a *newer* Save would have written: mutate a copy of the
	// tree (via reload) and serialize it elsewhere.
	mutated, err := Load(path, am.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, err := mutated.Delete(pts[i].Key, pts[i].RID); err != nil {
			t.Fatal(err)
		}
	}
	newPath := filepath.Join(dir, "newer.idx")
	if err := Save(newPath, mutated); err != nil {
		t.Fatal(err)
	}
	newBytes, err := os.ReadFile(newPath)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		cut := 1 + rng.Intn(len(newBytes)-1)
		if err := os.WriteFile(path+".tmp", newBytes[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		// The live index is untouched by the torn tmp…
		loaded, err := Load(path, am.Options{})
		if err != nil {
			t.Fatalf("trial %d (cut %d): previous index unreadable: %v", trial, cut, err)
		}
		digest := queryDigest(t, func(q geom.Vector, k int) []nn.Result {
			return nn.Search(loaded, q, k, nil)
		})
		if digest != golden {
			t.Fatalf("trial %d (cut %d): workload digest changed: %x != %x",
				trial, cut, digest, golden)
		}
	}

	// …and a subsequent successful Save replaces both the index and the
	// stale temp file.
	if err := Save(path, mutated); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("stale temp file survives a successful Save (stat err: %v)", err)
	}
	reloaded, err := Load(path, am.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.Len() != mutated.Len() {
		t.Errorf("resaved len %d, want %d", reloaded.Len(), mutated.Len())
	}
}

// Save's error paths clean up: a failed create leaves nothing behind, and
// an unwritable directory surfaces the error instead of swallowing it.
func TestSaveErrorPathsCleanUp(t *testing.T) {
	tree, _ := buildTree(t, am.KindRTree, 300, 2, 1024)
	if err := Save("/nonexistent-dir/x.idx", tree); err == nil {
		t.Error("Save into a missing directory did not error")
	}
	// Saving over an existing index is atomic: open the old one paged,
	// save a new one over it, and the open handle still serves (POSIX
	// rename semantics — the old inode lives until closed).
	dir := t.TempDir()
	path := filepath.Join(dir, "over.idx")
	if err := Save(path, tree); err != nil {
		t.Fatal(err)
	}
	paged, store, err := OpenPaged(path, am.Options{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if err := Save(path, tree); err != nil {
		t.Fatal(err)
	}
	if _, err := nn.SearchCtx(context.Background(), paged, geom.Vector{50, 50}, 10, nil); err != nil {
		t.Errorf("open handle broken by overwriting Save: %v", err)
	}
}

// Pin of a freed page matches the ErrFreed sentinel.
func TestFreedPinMatchesSentinel(t *testing.T) {
	tree, pts := buildTree(t, am.KindRTree, 600, 2, 1024)
	path := filepath.Join(t.TempDir(), "freed.idx")
	if err := Save(path, tree); err != nil {
		t.Fatal(err)
	}
	paged, store, err := OpenPaged(path, am.Options{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	// Dissolve most of the tree so node pages get freed.
	for i := 0; i < 550; i++ {
		if _, err := paged.Delete(pts[i].Key, pts[i].RID); err != nil {
			t.Fatal(err)
		}
	}
	freedID := page.PageID(-1)
	for id := page.PageID(0); int(id) < tree.NumPages(); id++ {
		n, err := store.Pin(id)
		if err != nil {
			if errors.Is(err, ErrFreed) {
				freedID = id
				break
			}
			t.Fatalf("probe pin of page %d: %v", id, err)
		}
		store.Unpin(n)
	}
	if freedID < 0 {
		t.Skip("mass delete freed no file pages")
	}
	_, err = store.Pin(freedID)
	if !errors.Is(err, ErrFreed) {
		t.Errorf("pin of freed page %d: %v, want ErrFreed", freedID, err)
	}
}

// Satellite: EvictAll racing active searches under -race. Pins must keep
// victims resident (searches stay correct), nothing deadlocks, and the
// counters stay consistent.
func TestEvictAllRacesActiveSearches(t *testing.T) {
	tree, _ := buildTree(t, am.KindXJB, 2000, 3, 2048)
	path := filepath.Join(t.TempDir(), "race.idx")
	if err := Save(path, tree); err != nil {
		t.Fatal(err)
	}
	paged, store, err := OpenPaged(path, am.Options{}, tree.NumPages()/4)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	const searchers = 4
	const queriesPerSearcher = 40
	var wg sync.WaitGroup
	errCh := make(chan error, searchers)
	for g := 0; g < searchers; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < queriesPerSearcher; i++ {
				q := geom.Vector{rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 100}
				want := nn.Search(tree, q, 25, nil)
				got, err := nn.SearchCtx(context.Background(), paged, q, 25, nil)
				if err != nil {
					errCh <- err
					return
				}
				for j := range want {
					if got[j].RID != want[j].RID || got[j].Dist2 != want[j].Dist2 {
						errCh <- fmt.Errorf("query %d result %d diverged under eviction", i, j)
						return
					}
				}
			}
		}(int64(100 + g))
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	for {
		select {
		case <-done:
			goto drained
		case err := <-errCh:
			t.Fatal(err)
		default:
			store.EvictAll()
		}
	}
drained:
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	st := store.PoolStats()
	if st.Pinned != 0 {
		t.Errorf("%d pages left pinned after all searches drained", st.Pinned)
	}
	if st.Misses == 0 {
		t.Error("eviction churn produced no misses — EvictAll not exercised")
	}
}

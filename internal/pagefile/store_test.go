package pagefile

import (
	"math/rand"
	"path/filepath"
	"testing"

	"blobindex/internal/am"
	"blobindex/internal/geom"
	"blobindex/internal/gist"
	"blobindex/internal/nn"
	"blobindex/internal/page"
)

// The headline acceptance check: a demand-paged index with a buffer pool at
// 25% of the tree's pages answers 200-NN queries with results identical to
// the fully in-memory tree, for every access method. Leaf attributions are
// deliberately excluded from the comparison — the paged store addresses
// nodes by file page index while the in-memory tree numbers them in build
// order — so identity means RID and distance, which is what callers see.
func TestOpenPagedMatchesInMemory(t *testing.T) {
	dir := t.TempDir()
	for _, kind := range am.Kinds() {
		t.Run(string(kind), func(t *testing.T) {
			tree, _ := buildTree(t, kind, 2500, 3, 2048)
			path := filepath.Join(dir, string(kind)+".idx")
			if err := Save(path, tree); err != nil {
				t.Fatal(err)
			}
			pool := tree.NumPages() / 4
			paged, store, err := OpenPaged(path, am.Options{AMAPSamples: 32}, pool)
			if err != nil {
				t.Fatal(err)
			}
			defer store.Close()
			if paged.Len() != tree.Len() || paged.Height() != tree.Height() {
				t.Fatalf("shape: len %d→%d height %d→%d",
					tree.Len(), paged.Len(), tree.Height(), paged.Height())
			}
			rng := rand.New(rand.NewSource(11))
			for trial := 0; trial < 8; trial++ {
				q := geom.Vector{rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 100}
				want := nn.Search(tree, q, 200, nil)
				got := nn.Search(paged, q, 200, nil)
				if len(got) != len(want) {
					t.Fatalf("trial %d: %d results, want %d", trial, len(got), len(want))
				}
				for i := range want {
					if got[i].RID != want[i].RID || got[i].Dist2 != want[i].Dist2 {
						t.Fatalf("trial %d result %d: (%d, %v) want (%d, %v)",
							trial, i, got[i].RID, got[i].Dist2, want[i].RID, want[i].Dist2)
					}
				}
				// Range queries through the GiST SEARCH template agree too.
				r2 := 40.0
				wantR, err := tree.RangeSearch(q, r2, nil)
				if err != nil {
					t.Fatal(err)
				}
				gotR, err := paged.RangeSearch(q, r2, nil)
				if err != nil {
					t.Fatal(err)
				}
				if len(gotR) != len(wantR) {
					t.Fatalf("range: %d rids, want %d", len(gotR), len(wantR))
				}
				for i := range wantR {
					if gotR[i] != wantR[i] {
						t.Fatalf("range rid %d: %d want %d", i, gotR[i], wantR[i])
					}
				}
			}
			st := store.PoolStats()
			if st.Pinned != 0 {
				t.Errorf("queries left %d pages pinned", st.Pinned)
			}
			if st.Resident > pool {
				t.Errorf("pool holds %d pages, capacity %d", st.Resident, pool)
			}
			if st.Misses == 0 {
				t.Error("no misses at 25%% capacity — demand paging not exercised")
			}
			if st.Evictions == 0 {
				t.Error("no evictions at 25%% capacity")
			}
		})
	}
}

// Warm pool: with capacity for the whole tree, repeating a query must cost
// zero additional misses — every page is served from the pool.
func TestOpenPagedWarmPoolServesFromMemory(t *testing.T) {
	tree, _ := buildTree(t, am.KindJB, 1500, 3, 2048)
	path := filepath.Join(t.TempDir(), "warm.idx")
	if err := Save(path, tree); err != nil {
		t.Fatal(err)
	}
	paged, store, err := OpenPaged(path, am.Options{}, tree.NumPages())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	q := geom.Vector{50, 50, 50}
	nn.Search(paged, q, 50, nil)
	cold := store.PoolStats()
	nn.Search(paged, q, 50, nil)
	warm := store.PoolStats().Sub(cold)
	if warm.Misses != 0 {
		t.Errorf("warm repeat of the same query missed %d times", warm.Misses)
	}
	if warm.Hits == 0 {
		t.Error("warm repeat recorded no hits")
	}
	if cold.Misses == 0 {
		t.Error("cold query recorded no misses")
	}
}

// Satellite: mutations flow through the file-backed store. For every access
// method: open paged, insert, delete (copy-on-delete keeps file pages
// untouched), tighten, and verify the GiST invariants plus query identity
// against an in-memory tree that underwent the same edits.
func TestPagedMutationMatchesInMemory(t *testing.T) {
	dir := t.TempDir()
	for _, kind := range am.Kinds() {
		t.Run(string(kind), func(t *testing.T) {
			tree, pts := buildTree(t, kind, 900, 2, 1024)
			path := filepath.Join(dir, string(kind)+"-mut.idx")
			if err := Save(path, tree); err != nil {
				t.Fatal(err)
			}
			paged, store, err := OpenPaged(path, am.Options{AMAPSamples: 32}, 16)
			if err != nil {
				t.Fatal(err)
			}
			defer store.Close()

			mutate := func(tr *gist.Tree) {
				t.Helper()
				for i := 0; i < 60; i++ {
					p := gist.Point{Key: geom.Vector{float64(i) * 1.5, 101 + float64(i%7)}, RID: int64(50000 + i)}
					if err := tr.Insert(p); err != nil {
						t.Fatal(err)
					}
				}
				for i := 0; i < 150; i++ {
					ok, err := tr.Delete(pts[i].Key, pts[i].RID)
					if err != nil {
						t.Fatal(err)
					}
					if !ok {
						t.Fatalf("delete %d: point not found", i)
					}
				}
				if err := tr.TightenPredicates(); err != nil {
					t.Fatal(err)
				}
			}
			mutate(tree)
			mutate(paged)

			if paged.Len() != tree.Len() {
				t.Fatalf("len %d, in-memory %d", paged.Len(), tree.Len())
			}
			if err := paged.CheckIntegrity(); err != nil {
				t.Fatalf("integrity after mutation: %v", err)
			}
			if store.Dirty() == 0 {
				t.Error("mutations produced no dirty nodes")
			}
			rng := rand.New(rand.NewSource(13))
			for trial := 0; trial < 6; trial++ {
				q := geom.Vector{rng.Float64() * 100, rng.Float64() * 100}
				want := nn.Search(tree, q, 40, nil)
				got := nn.Search(paged, q, 40, nil)
				if len(got) != len(want) {
					t.Fatalf("trial %d: %d results, want %d", trial, len(got), len(want))
				}
				for i := range want {
					if got[i].RID != want[i].RID || got[i].Dist2 != want[i].Dist2 {
						t.Fatalf("trial %d result %d: (%d, %v) want (%d, %v)",
							trial, i, got[i].RID, got[i].Dist2, want[i].RID, want[i].Dist2)
					}
				}
			}

			// The mutated paged tree persists and reloads cleanly.
			out := filepath.Join(dir, string(kind)+"-resaved.idx")
			if err := Save(out, paged); err != nil {
				t.Fatal(err)
			}
			reloaded, err := Load(out, am.Options{AMAPSamples: 32})
			if err != nil {
				t.Fatal(err)
			}
			if reloaded.Len() != paged.Len() {
				t.Fatalf("resaved len %d, want %d", reloaded.Len(), paged.Len())
			}
			if err := reloaded.CheckIntegrity(); err != nil {
				t.Fatalf("resaved integrity: %v", err)
			}
		})
	}
}

// A freed page stays freed: deleting enough points to dissolve nodes must
// make their old ids unpinnable, and the tree must never reference them.
func TestPagedFreedPagesRejectPins(t *testing.T) {
	tree, pts := buildTree(t, am.KindRTree, 600, 2, 1024)
	path := filepath.Join(t.TempDir(), "free.idx")
	if err := Save(path, tree); err != nil {
		t.Fatal(err)
	}
	paged, store, err := OpenPaged(path, am.Options{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	for i := 0; i < 550; i++ {
		if _, err := paged.Delete(pts[i].Key, pts[i].RID); err != nil {
			t.Fatal(err)
		}
	}
	if err := paged.CheckIntegrity(); err != nil {
		t.Fatalf("integrity after mass delete: %v", err)
	}
	if paged.Len() != 50 {
		t.Fatalf("len %d, want 50", paged.Len())
	}
}

// Zero-capacity pool is the fully cold configuration: every unpinned page
// re-reads from disk, but queries still work and still pin-balance.
func TestOpenPagedZeroCapacity(t *testing.T) {
	tree, _ := buildTree(t, am.KindRTree, 800, 2, 1024)
	path := filepath.Join(t.TempDir(), "cold.idx")
	if err := Save(path, tree); err != nil {
		t.Fatal(err)
	}
	paged, store, err := OpenPaged(path, am.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	want := nn.Search(tree, geom.Vector{30, 70}, 25, nil)
	got := nn.Search(paged, geom.Vector{30, 70}, 25, nil)
	if len(got) != len(want) {
		t.Fatalf("%d results, want %d", len(got), len(want))
	}
	st := store.PoolStats()
	if st.Pinned != 0 || st.Resident != 0 {
		t.Errorf("cold pool retains frames: %+v", st)
	}
	if st.Hits != 0 {
		t.Errorf("cold pool recorded %d hits", st.Hits)
	}
}

// Descent prefetch is advisory: with the async prefetcher hinting frontier
// pages during every paged k-NN, results must stay identical to the
// in-memory tree, and the counters must balance — every prefetched load is
// eventually claimed by a Pin or written off as wasted, never both.
func TestPagedPrefetchIdenticalResultsAndCounters(t *testing.T) {
	tree, _ := buildTree(t, am.KindRTree, 2500, 3, 2048)
	path := filepath.Join(t.TempDir(), "prefetch.idx")
	if err := Save(path, tree); err != nil {
		t.Fatal(err)
	}
	pool := tree.NumPages() / 4
	paged, store, err := OpenPaged(path, am.Options{}, pool)
	if err != nil {
		t.Fatal(err)
	}
	closed := false
	defer func() {
		if !closed {
			store.Close()
		}
	}()
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 16; trial++ {
		q := geom.Vector{rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 100}
		want := nn.Search(tree, q, 200, nil)
		got := nn.Search(paged, q, 200, nil)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d results, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i].RID != want[i].RID || got[i].Dist2 != want[i].Dist2 {
				t.Fatalf("trial %d result %d: (%d, %v) want (%d, %v)",
					trial, i, got[i].RID, got[i].Dist2, want[i].RID, want[i].Dist2)
			}
		}
	}
	// Close drains the prefetch worker, so the counters are final.
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	closed = true
	st := store.PoolStats()
	if st.Prefetched == 0 {
		t.Error("16 deep descents at 25%% pool capacity issued no prefetched loads")
	}
	if st.PrefetchHits+st.PrefetchWasted > st.Prefetched {
		t.Errorf("prefetch ledger overdrawn: hits %d + wasted %d > prefetched %d",
			st.PrefetchHits, st.PrefetchWasted, st.Prefetched)
	}
	if st.PrefetchHits > st.Misses {
		t.Errorf("prefetch hits %d exceed misses %d — a claimed prefetch must count as a miss",
			st.PrefetchHits, st.Misses)
	}
	if st.Pinned != 0 {
		t.Errorf("queries left %d pages pinned", st.Pinned)
	}
}

// Prefetch after Close must be a harmless no-op, and Close must be safe to
// race with a burst of hints — the regression shape is a send on a closed
// channel.
func TestPrefetchAfterCloseIsNoop(t *testing.T) {
	tree, _ := buildTree(t, am.KindRTree, 400, 2, 1024)
	path := filepath.Join(t.TempDir(), "pfclose.idx")
	if err := Save(path, tree); err != nil {
		t.Fatal(err)
	}
	_, store, err := OpenPaged(path, am.Options{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			store.Prefetch(page.PageID(i % 8))
		}
	}()
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	<-done
	store.Prefetch(3) // after Close: dropped, no panic
}

package pagefile

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"blobindex/internal/faultio"
	"blobindex/internal/geom"
	"blobindex/internal/svd"
)

// sidecarFixture writes a sidecar of n records with fullDim features and an
// indexDim projection fitted over the data, returning the path, the features
// and the fitted PCA.
func sidecarFixture(t *testing.T, n, fullDim, indexDim, pageSize int) (string, []int64, [][]float64, *svd.PCA) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	feats := make([][]float64, n)
	vecs := make([]geom.Vector, n)
	rids := make([]int64, n)
	for i := range feats {
		f := make([]float64, fullDim)
		for d := range f {
			f[d] = rng.Float64()
		}
		feats[i] = f
		vecs[i] = f
		// Shuffled, sparse RIDs: SaveSidecar must sort and the directory must
		// cope with gaps.
		rids[i] = int64(i * 7)
	}
	rng.Shuffle(n, func(a, b int) {
		feats[a], feats[b] = feats[b], feats[a]
		rids[a], rids[b] = rids[b], rids[a]
	})
	pca, err := svd.Fit(vecs, indexDim)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "side.idx")
	if err := SaveSidecar(path, pageSize, pca.Mean, pca.Components, rids, feats); err != nil {
		t.Fatal(err)
	}
	return path, rids, feats, pca
}

func TestSidecarRoundTrip(t *testing.T) {
	const (
		n        = 137
		fullDim  = 31
		indexDim = 4
		pageSize = 1024
	)
	path, rids, feats, pca := sidecarFixture(t, n, fullDim, indexDim, pageSize)
	s, err := OpenSidecar(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.FullDim() != fullDim || s.IndexDim() != indexDim || s.Len() != n {
		t.Fatalf("shape = (%d, %d, %d), want (%d, %d, %d)",
			s.FullDim(), s.IndexDim(), s.Len(), fullDim, indexDim, n)
	}

	// Every record round-trips bit for bit under its (sparse) RID: the
	// fixture shuffles (rid, feature) pairs together, so rids[i] owns
	// feats[i] regardless of on-disk sort order.
	var buf []float64
	for i, f := range feats {
		rid := rids[i]
		got, err := s.Feature(rid, buf[:0])
		if err != nil {
			t.Fatalf("Feature(%d): %v", rid, err)
		}
		buf = got
		for d := range f {
			if got[d] != f[d] {
				t.Fatalf("Feature(%d)[%d] = %v, want %v", rid, d, got[d], f[d])
			}
		}
	}

	// Unknown RIDs (holes in the sparse space and out-of-range ids) miss.
	for _, rid := range []int64{-1, 3, int64(n*7) + 1} {
		if _, err := s.Feature(rid, nil); !errors.Is(err, ErrRIDNotFound) {
			t.Fatalf("Feature(%d) = %v, want ErrRIDNotFound", rid, err)
		}
	}

	// The stored projection reproduces svd.PCA.Project bit for bit.
	for _, f := range feats[:16] {
		want := pca.Project(f)
		got := s.Project(f, nil)
		for d := range want {
			if got[d] != want[d] {
				t.Fatalf("Project[%d] = %v, want %v", d, got[d], want[d])
			}
		}
	}
}

func TestSidecarRejectsDuplicateRIDs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dup.idx")
	feats := [][]float64{{1, 2}, {3, 4}}
	err := SaveSidecar(path, 512, []float64{0, 0}, nil, []int64{5, 5}, feats)
	if err == nil {
		t.Fatal("SaveSidecar accepted duplicate RIDs")
	}
}

func TestSidecarChecksum(t *testing.T) {
	path, _, _, _ := sidecarFixture(t, 40, 16, 3, 512)

	// Flip one byte in the first data page; the read must fail ErrChecksum.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s, err := OpenSidecar(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	metaPages := s.h.metaPages
	s.Close()

	corrupted := append([]byte(nil), data...)
	corrupted[(1+metaPages)*512+20] ^= 0xff
	if err := os.WriteFile(path, corrupted, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err = OpenSidecar(path, 4)
	if err != nil {
		t.Fatal(err) // header and meta are intact; open succeeds
	}
	defer s.Close()
	if _, err := s.Feature(0, nil); !errors.Is(err, ErrChecksum) {
		t.Fatalf("Feature over corrupt page = %v, want ErrChecksum", err)
	}

	// Corrupt the header: open itself must fail.
	corrupted = append([]byte(nil), data...)
	corrupted[12] ^= 0xff
	if err := os.WriteFile(path, corrupted, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSidecar(path, 4); err == nil {
		t.Fatal("OpenSidecar accepted a corrupt header")
	}
}

func TestSidecarTransientRetry(t *testing.T) {
	path, _, _, _ := sidecarFixture(t, 40, 16, 3, 512)

	// Every page read fails transiently twice, then succeeds: lookups must
	// absorb the blips invisibly and count the retries.
	var inj *faultio.Injector
	s, err := OpenSidecarIO(path, 4, func(f faultio.File) faultio.File {
		inj = faultio.Wrap(f, faultio.Config{
			Seed:           7,
			PageSize:       512,
			Rates:          faultio.Rates{Transient: 1.0},
			MaxConsecutive: 2,
		})
		return inj
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Feature(0, nil); err != nil {
		t.Fatalf("Feature under transient faults: %v", err)
	}
	st := s.PoolStats()
	if st.Retries == 0 {
		t.Fatalf("expected retries to be counted, got %+v", st)
	}
	if st.GaveUp != 0 {
		t.Fatalf("bounded faults must not exhaust the budget: %+v", st)
	}

	// Warm lookups never touch the injured file again.
	before := inj.Stats()
	if _, err := s.Feature(0, nil); err != nil {
		t.Fatal(err)
	}
	if after := inj.Stats(); after.Reads != before.Reads {
		t.Fatalf("pool hit still read the file: %+v -> %+v", before, after)
	}
}

func TestSidecarGivesUpOnPersistentFaults(t *testing.T) {
	path, _, _, _ := sidecarFixture(t, 40, 16, 3, 512)
	s, err := OpenSidecarIO(path, 4, func(f faultio.File) faultio.File {
		return faultio.Wrap(f, faultio.Config{
			Seed:     7,
			PageSize: 512,
			Rates:    faultio.Rates{Transient: 1.0}, // never clears
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Feature(0, nil); !errors.Is(err, ErrTransient) {
		t.Fatalf("Feature = %v, want ErrTransient after budget", err)
	}
	if st := s.PoolStats(); st.GaveUp != 1 {
		t.Fatalf("GaveUp = %d, want 1 (%+v)", st.GaveUp, st)
	}
}

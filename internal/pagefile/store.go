package pagefile

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"blobindex/internal/am"
	"blobindex/internal/faultio"
	"blobindex/internal/gist"
	"blobindex/internal/page"
)

// Store is the file-backed gist.NodeStore: nodes live in the pagefile and
// are decoded on demand through a pinning buffer pool, so a tree opened
// with OpenPaged answers queries by reading exactly the pages its
// traversals touch. This is the paper's operating regime — an index that
// does not fit in memory, served through a fixed buffer budget — made
// directly measurable: the pool counts hits, misses and evictions, and the
// store additionally attributes every real page read to its tree level so
// the amdb simulation's per-level I/O counts can be checked against actual
// buffer traffic.
//
// Mutations never touch the file in place. A node passed to MarkDirty (or
// born from Alloc) migrates out of the pool into a dirty set where it stays
// resident with stable identity until the tree is persisted again with
// Save; Free retires a page id for the lifetime of the store. Dirty-set
// hits are not counted in the pool's statistics — a dirty page is resident
// by definition, not a buffering decision.
//
// The store is safe for concurrent readers (the pool is internally locked
// and racing loads of the same page resolve to one resident copy); the
// dirty set is only written under the tree's exclusive lock, matching the
// NodeStore contract.
type Store struct {
	f       faultio.File
	h       header
	bpWords int
	ext     gist.Extension
	codec   am.PredicateCodec
	pool    *page.PinnedPool

	// retries counts page re-reads after a transient failure; gaveUp counts
	// pins that exhausted the retry budget and returned ErrTransient to the
	// traversal. Both are surfaced through PoolStats (and from there the
	// facade's BufferStats and amdb reports).
	retries atomic.Int64
	gaveUp  atomic.Int64

	// prefetchCh feeds the single background load-ahead worker; see
	// Prefetch. The worker exits when the channel closes (Close), and
	// prefetchWG lets Close wait for it before releasing the file.
	prefetchCh chan page.PageID
	prefetchWG sync.WaitGroup

	mu           sync.Mutex
	closed       bool
	dirty        map[page.PageID]*gist.Node
	freed        map[page.PageID]bool
	next         page.PageID // next Alloc id; starts past the file's pages
	missByLevel  []int64     // real page reads by tree level of the page
	retryByLevel []int64     // transient-read retries by level, attributed on eventual success
}

var (
	_ gist.NodeStore     = (*Store)(nil)
	_ gist.StatsProvider = (*Store)(nil)
	_ gist.Prefetcher    = (*Store)(nil)
)

// OpenPaged opens a pagefile for demand-paged querying with a buffer pool
// of poolPages frames. The returned tree serves searches, inserts and
// deletes without ever materializing more than the pool holds plus the
// pages currently pinned by active traversals; mutations accumulate in
// memory until the tree is written back out with Save. The Store is
// returned alongside the tree for lifecycle (Close) and statistics access;
// it is the same value as tree.Store().
func OpenPaged(path string, opts am.Options, poolPages int) (*gist.Tree, *Store, error) {
	return OpenPagedIO(path, opts, poolPages, nil)
}

// OpenPagedIO is OpenPaged with an I/O shim: when wrap is non-nil the
// store's demand-paged node reads go through wrap(file) instead of the file
// itself. The chaos experiment and the fault-tolerance tests pass a
// faultio.Injector here; the header is still read from the real file, so a
// faulty shim degrades queries, not opening.
func OpenPagedIO(path string, opts am.Options, poolPages int, wrap func(faultio.File) faultio.File) (*gist.Tree, *Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	h, err := readHeader(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	ext, codec, err := extFor(h, opts)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	var file faultio.File = f
	if wrap != nil {
		file = wrap(f)
	}
	s := &Store{
		f:           file,
		h:           h,
		bpWords:     ext.BPWords(h.dim),
		ext:         ext,
		codec:       codec,
		pool:        page.NewPinnedPool(poolPages),
		dirty:       make(map[page.PageID]*gist.Node),
		freed:       make(map[page.PageID]bool),
		next:        page.PageID(h.numPages),
		missByLevel: make([]int64, h.height),
	}
	tree, err := gist.NewFromStore(ext, gist.Config{Dim: h.dim, PageSize: h.pageSize}, s,
		page.PageID(h.rootPage), h.height, h.count)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	s.prefetchCh = make(chan page.PageID, prefetchQueueCap)
	s.prefetchWG.Add(1)
	go s.prefetchLoop()
	return tree, s, nil
}

// prefetchQueueCap bounds the pending load-ahead hints; Prefetch drops on
// the floor past it rather than ever blocking a traversal.
const prefetchQueueCap = 64

// Prefetch implements gist.Prefetcher: a hint that id will likely be pinned
// soon. The background worker reads and decodes the page and parks it in
// the buffer pool unpinned, so the later Pin finds it resident (counted as
// a miss plus a prefetch hit — the read happened on that Pin's behalf; see
// page.PoolStats). Purely advisory: never blocks, errors are dropped, and
// hints are discarded when the queue is full or the store is closed.
func (s *Store) Prefetch(id page.PageID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	select {
	case s.prefetchCh <- id:
	default:
	}
}

// prefetchLoop is the single background load-ahead worker. One worker (not
// a pool) serializes prefetch reads, so duplicate hints for a page resolve
// against the residency check instead of racing each other on the file.
func (s *Store) prefetchLoop() {
	defer s.prefetchWG.Done()
	for id := range s.prefetchCh {
		s.mu.Lock()
		_, dirty := s.dirty[id]
		skip := dirty || s.freed[id]
		s.mu.Unlock()
		if skip || s.pool.Contains(id) {
			continue
		}
		// One attempt, no retries: a prefetch that fails transiently just
		// leaves the page for the demand path's retrying Pin.
		n, err := s.readPage(id)
		if err != nil {
			continue
		}
		s.pool.InsertPrefetch(id, n)
	}
}

// Retry policy for transient page-read failures: pinAttempts total read
// attempts per Pin, with exponential backoff from pinRetryBase and ±50%
// jitter between attempts. At the default values a page that stays broken
// costs well under 2ms before the error surfaces, while a blip (one or two
// failed attempts) is absorbed invisibly.
const (
	pinAttempts  = 4
	pinRetryBase = 100 * time.Microsecond
)

// Pin returns the node for id, resident until the matching Unpin: from the
// dirty set if the node was mutated, from the buffer pool on a hit, and by
// reading and decoding its file page on a miss. Transient read failures
// (ErrTransient) are retried with jittered exponential backoff up to
// pinAttempts; corruption (ErrChecksum) and freed pages (ErrFreed) fail
// immediately — re-reading cannot fix wrong bytes.
func (s *Store) Pin(id page.PageID) (*gist.Node, error) {
	s.mu.Lock()
	if n, ok := s.dirty[id]; ok {
		s.mu.Unlock()
		return n, nil
	}
	if s.freed[id] {
		s.mu.Unlock()
		return nil, fmt.Errorf("pagefile: page %d: %w", id, ErrFreed)
	}
	s.mu.Unlock()
	if v, ok, prefetched := s.pool.PinTracked(id); ok {
		n := v.(*gist.Node)
		if prefetched {
			// First use of a prefetched frame: the physical read happened on
			// this pin's behalf, so attribute it per level exactly like a
			// demand read — which keeps MissesByLevel equal to the amdb
			// simulation's per-level I/Os regardless of prefetching.
			s.mu.Lock()
			for len(s.missByLevel) <= n.Level() {
				s.missByLevel = append(s.missByLevel, 0)
			}
			s.missByLevel[n.Level()]++
			s.mu.Unlock()
		}
		return n, nil
	}
	n, retried, err := s.readPageRetry(id)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	for len(s.missByLevel) <= n.Level() {
		s.missByLevel = append(s.missByLevel, 0)
	}
	s.missByLevel[n.Level()]++
	if retried > 0 {
		for len(s.retryByLevel) <= n.Level() {
			s.retryByLevel = append(s.retryByLevel, 0)
		}
		s.retryByLevel[n.Level()] += int64(retried)
	}
	s.mu.Unlock()
	// Insert resolves racing loaders to a single resident copy.
	return s.pool.Insert(id, n).(*gist.Node), nil
}

// readPageRetry reads a page, retrying transient failures with jittered
// backoff. It reports how many retries the successful read needed (the
// level is only known after a successful decode, so per-level attribution
// happens in Pin); a pin that exhausts the budget counts toward gaveUp.
func (s *Store) readPageRetry(id page.PageID) (*gist.Node, int, error) {
	retried := 0
	for attempt := 0; ; attempt++ {
		n, err := s.readPage(id)
		if err == nil {
			return n, retried, nil
		}
		if !errors.Is(err, ErrTransient) || attempt >= pinAttempts-1 {
			if errors.Is(err, ErrTransient) {
				s.gaveUp.Add(1)
			}
			return nil, retried, err
		}
		retried++
		s.retries.Add(1)
		delay := float64(pinRetryBase<<attempt) * (0.5 + rand.Float64())
		time.Sleep(time.Duration(delay))
	}
}

// transientRead reports whether a raw read error is worth retrying: an
// injected transient fault, or the interrupted/try-again errnos the OS uses
// for recoverable conditions.
func transientRead(err error) bool {
	return errors.Is(err, faultio.ErrTransient) ||
		errors.Is(err, syscall.EINTR) ||
		errors.Is(err, syscall.EAGAIN)
}

// Unpin releases one pin. For dirty nodes (no pool frame) it is a no-op,
// which is exactly the contract: dirty nodes stay resident regardless.
func (s *Store) Unpin(n *gist.Node) {
	s.pool.Unpin(n.ID())
}

// MarkDirty migrates a pinned node out of the pool into the dirty set,
// where it is exempt from eviction and keeps its identity until Save.
func (s *Store) MarkDirty(n *gist.Node) {
	s.mu.Lock()
	if _, ok := s.dirty[n.ID()]; !ok {
		s.dirty[n.ID()] = n
	}
	s.mu.Unlock()
	s.pool.Remove(n.ID())
}

// Alloc creates an empty node at the given level under a fresh id past the
// file's page range. The node is born dirty.
func (s *Store) Alloc(level int) *gist.Node {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.next
	s.next++
	var n *gist.Node
	if level == 0 {
		n = gist.NewLeafNode(id, s.h.dim, nil, nil)
	} else {
		n = gist.NewInnerNode(id, level, s.h.dim, nil, nil)
	}
	s.dirty[id] = n
	return n
}

// Free retires a page id: it is dropped from the dirty set and the pool,
// and subsequent Pins of it fail. The file itself is untouched until the
// tree is saved again.
func (s *Store) Free(id page.PageID) {
	s.mu.Lock()
	delete(s.dirty, id)
	s.freed[id] = true
	s.mu.Unlock()
	s.pool.Remove(id)
}

// readPage reads and decodes one node page from the file.
func (s *Store) readPage(id page.PageID) (*gist.Node, error) {
	if id < 0 || int(id) >= s.h.numPages {
		return nil, fmt.Errorf("pagefile: page %d out of range (file has %d)", id, s.h.numPages)
	}
	buf := make([]byte, s.h.pageSize)
	if _, err := s.f.ReadAt(buf, int64(1+int(id))*int64(s.h.pageSize)); err != nil {
		if transientRead(err) {
			return nil, fmt.Errorf("pagefile: read page %d: %w (%w)", id, err, ErrTransient)
		}
		return nil, fmt.Errorf("pagefile: read page %d: %w", id, err)
	}
	level, flat, rids, preds, children, err := decodeNodePage(buf, int(id), s.h, s.bpWords, s.codec)
	if err != nil {
		return nil, err
	}
	if level == 0 {
		return gist.NewLeafNode(id, s.h.dim, flat, rids), nil
	}
	return gist.NewInnerNode(id, level, s.h.dim, preds, children), nil
}

// PoolStats implements gist.StatsProvider. On top of the pool's own
// counters it reports the store's transient-read retry traffic: Retries is
// page re-reads after a transient failure, GaveUp is pins that exhausted
// the retry budget and surfaced ErrTransient.
func (s *Store) PoolStats() page.PoolStats {
	st := s.pool.Stats()
	st.Retries = s.retries.Load()
	st.GaveUp = s.gaveUp.Load()
	return st
}

// MissesByLevel returns a copy of the per-level real page-read counts
// (index = tree level, 0 = leaves). These are the numbers the amdb
// simulation predicts with its per-level I/O accounting; with the pool
// emptied between queries the two must agree exactly.
func (s *Store) MissesByLevel() []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int64, len(s.missByLevel))
	copy(out, s.missByLevel)
	return out
}

// RetriesByLevel returns a copy of the per-level transient-read retry
// counts (index = tree level, 0 = leaves). Retries are attributed to a
// level once the page finally decodes; reads that never succeeded are in
// the gave-up counter instead, since their level is unknowable.
func (s *Store) RetriesByLevel() []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int64, len(s.retryByLevel))
	copy(out, s.retryByLevel)
	return out
}

// EvictAll empties the buffer pool of unpinned frames — a cold restart,
// used by experiments measuring per-query fault counts.
func (s *Store) EvictAll() {
	s.pool.EvictAll()
}

// ResetStats zeroes the pool counters, the per-level read counts and the
// retry counters.
func (s *Store) ResetStats() {
	s.pool.ResetStats()
	s.retries.Store(0)
	s.gaveUp.Store(0)
	s.mu.Lock()
	for i := range s.missByLevel {
		s.missByLevel[i] = 0
	}
	for i := range s.retryByLevel {
		s.retryByLevel[i] = 0
	}
	s.mu.Unlock()
}

// Dirty reports how many nodes are held in the dirty set (allocated or
// mutated since open), mainly for tests and diagnostics.
func (s *Store) Dirty() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.dirty)
}

// Close releases the underlying file. It is idempotent — a second Close is
// a nil no-op instead of an os.File double-close error, so stacked shutdown
// paths (e.g. a daemon's signal handler and its deferred cleanup) compose.
// The prefetch worker is drained and joined before the file closes, so no
// background read ever touches a closed file. Dirty nodes are not written
// back; persist with Save first if mutations must survive.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	if s.prefetchCh != nil {
		close(s.prefetchCh) // Prefetch checks closed under mu, so no late sends
		s.prefetchWG.Wait()
	}
	return s.f.Close()
}

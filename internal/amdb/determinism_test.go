package amdb

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"math/rand"
	"testing"

	"blobindex/internal/am"
	"blobindex/internal/geom"
	"blobindex/internal/gist"
	"blobindex/internal/str"
)

// goldenReplayDigest is the SHA-256 of the full workload execution —
// per-query page traces and result sets for all six access methods under
// both the sphere and best-first modes plus a Replay — captured on the
// pre-flat-layout implementation. The flat leaf layout, the unrolled
// distance kernels and the scratch-pooled search must reproduce it
// byte for byte: any drift in visit order, distances or result ranking
// changes the digest.
const goldenReplayDigest = "f2a094f64b7ef4180982ded69aff44ea078a2c821899338ae6b857ef5aa3aa38"

// determinismCorpus builds the seeded 5-D corpus and query set the digest
// is defined over.
func determinismCorpus() ([]gist.Point, []Query) {
	const (
		n       = 2500
		dim     = 5
		queries = 24
		k       = 40
	)
	rng := rand.New(rand.NewSource(4242))
	pts := make([]gist.Point, n)
	for i := range pts {
		key := make(geom.Vector, dim)
		for d := range key {
			// Mildly clustered coordinates so predicates have empty corners.
			key[d] = math.Floor(rng.Float64()*8)/8 + rng.Float64()*0.125
		}
		pts[i] = gist.Point{Key: key, RID: int64(i)}
	}
	qs := make([]Query, queries)
	for i := range qs {
		qs[i] = Query{Center: pts[rng.Intn(n)].Key.Clone(), K: k}
	}
	return pts, qs
}

func TestReplayDeterminismAcrossLayouts(t *testing.T) {
	pts, qs := determinismCorpus()
	h := sha256.New()
	wr := func(vals ...uint64) {
		var buf [8]byte
		for _, v := range vals {
			binary.LittleEndian.PutUint64(buf[:], v)
			h.Write(buf[:])
		}
	}
	for _, kind := range am.Kinds() {
		ext, err := am.New(kind, am.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cfg := gist.Config{Dim: 5, PageSize: 4096}
		ordered := make([]gist.Point, len(pts))
		copy(ordered, pts)
		probe, err := gist.New(ext, cfg)
		if err != nil {
			t.Fatal(err)
		}
		str.Order(ordered, probe.LeafCapacity())
		tree, err := gist.BulkLoad(ext, cfg, ordered, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		h.Write([]byte(kind))

		for _, mode := range []SearchMode{ModeSphere, ModeBestFirst} {
			rep, err := Analyze(tree, qs, Config{
				TargetUtil:  0.8,
				SkipOptimal: true,
				Mode:        mode,
				Parallelism: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			wr(uint64(mode), uint64(rep.Totals.LeafIOs), uint64(rep.Totals.InnerIOs))
			for qi := range rep.PerQuery {
				qp := &rep.PerQuery[qi]
				wr(uint64(qp.LeafIOs), uint64(qp.InnerIOs), uint64(qp.UsefulIOs))
				for _, res := range qp.Results {
					wr(uint64(res.RID), math.Float64bits(res.Dist2), uint64(res.Leaf))
				}
			}
		}

		rep, err := Replay(context.Background(), tree, qs, 1)
		if err != nil {
			t.Fatal(err)
		}
		wr(uint64(rep.LeafIOs), uint64(rep.InnerIOs))
		for _, rs := range rep.Results {
			for _, res := range rs {
				wr(uint64(res.RID), math.Float64bits(res.Dist2), uint64(res.Leaf))
			}
		}
	}
	got := hex.EncodeToString(h.Sum(nil))
	if got != goldenReplayDigest {
		t.Fatalf("workload replay digest drifted:\n got  %s\n want %s\n"+
			"(the query hot path is no longer byte-identical to the recorded behavior)", got, goldenReplayDigest)
	}
}

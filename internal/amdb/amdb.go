// Package amdb reimplements the analysis framework of the amdb access
// method debugging tool (Kornacker, Shah, Hellerstein 1999), which the
// Blobworld paper uses for every number in its evaluation: given a loaded
// GiST and a workload of nearest-neighbor queries, it executes the workload,
// profiles every page access, and decomposes the leaf-level I/O of each
// query into the three loss metrics of paper Table 1, measured against an
// idealized tree:
//
//   - Excess coverage loss: accesses to leaves holding no result of the
//     query — the fault of over-permissive bounding predicates.
//   - Utilization loss: extra accesses attributable to useful leaves being
//     emptier than the target utilization — the data could have been packed
//     onto fewer pages.
//   - Clustering loss: the remaining gap to the optimal assignment of data
//     to leaves, computed by multilevel hypergraph partitioning of the
//     workload's result sets (package blobindex/internal/hypergraph).
//
// The sum of the losses and the optimal I/Os reconstructs the observed leaf
// I/Os of each query, so "percent of leaf I/Os lost to X" (paper Figures
// 7/14) is directly readable from a Report.
package amdb

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"blobindex/internal/geom"
	"blobindex/internal/gist"
	"blobindex/internal/hypergraph"
	"blobindex/internal/nn"
	"blobindex/internal/page"
)

// Query is one workload query: the k nearest neighbors of Center.
type Query struct {
	Center geom.Vector
	K      int
}

// Config tunes the analysis.
type Config struct {
	// TargetUtil is the target page utilization against which utilization
	// loss is measured, in (0, 1]. amdb's convention; defaults to 0.8.
	TargetUtil float64
	// Seed drives the hypergraph partitioner.
	Seed int64
	// SkipOptimal disables the (comparatively expensive) optimal-clustering
	// computation; OptimalIOs and ClusteringLoss are then reported as zero
	// and the full leaf I/O decomposition is unavailable.
	SkipOptimal bool
	// Mode selects how the workload's k-NN queries execute. The default,
	// ModeSphere, is the paper's analytical model.
	Mode SearchMode
	// Parallelism bounds the worker goroutines executing the workload
	// (0 means GOMAXPROCS, 1 runs serially). The analysis is deterministic
	// for every value: queries execute into per-query slots and the metrics
	// are aggregated in query order.
	Parallelism int
}

// SearchMode selects the k-NN execution strategy the analysis profiles.
type SearchMode int

const (
	// ModeSphere executes each query as one range query at the query's
	// true k-th-neighbor radius — the "expanding sphere" model of paper §5
	// and Figure 9, with an identical sphere for every access method. A
	// leaf is read iff its bounding predicate intersects the sphere, so
	// the loss metrics isolate pure predicate quality; this is the default
	// and the mode under which the paper's figures are reproduced.
	ModeSphere SearchMode = iota
	// ModeBestFirst executes the Hjaltason–Samet best-first search: exact
	// and I/O-optimal for the given predicates.
	ModeBestFirst
	// ModeExpanding executes the full system behavior: a greedy probe
	// furnishes a radius estimate and range queries re-descend from the
	// root with growing spheres until one holds k points. Exact results;
	// I/O depends on the per-method radius schedule.
	ModeExpanding
	// ModeHarvest executes the "quick and dirty" candidate harvest of
	// §2.3: leaves are read in predicate-distance order until k candidates
	// are gathered; results are approximate.
	ModeHarvest
)

// QueryProfile is the per-query analysis outcome.
type QueryProfile struct {
	LeafIOs   int // leaf pages read
	InnerIOs  int // internal pages read
	UsefulIOs int // leaf pages read that held ≥1 result
	// InnerExcess counts internal pages read whose subtree contributed no
	// result — the inner-node share of excess coverage (the paper's
	// footnote 6 observes the SR-tree's total excess overtakes the
	// R-tree's once inner nodes are counted).
	InnerExcess int
	// OptimalIOs is the leaf I/Os of the idealized tree for this query: the
	// number of blocks the query's results span in the optimal clustering,
	// clamped so the ideal tree is never reported worse than the observed
	// one (the partitioner is a heuristic and can occasionally lose to the
	// achieved clustering). The clamp keeps the per-query decomposition
	// LeafIOs = OptimalIOs + ClusterLoss + UtilLoss + ExcessLoss exact.
	OptimalIOs float64

	ExcessLoss  float64 // = LeafIOs - UsefulIOs
	UtilLoss    float64
	ClusterLoss float64

	Results []nn.Result
}

// NodeProfile aggregates accesses to one leaf page across the workload.
type NodeProfile struct {
	Accesses      int
	EmptyAccesses int // accesses that produced no results
	Utilization   float64
}

// Totals aggregates the workload-level numbers the paper's tables and
// figures report.
type Totals struct {
	Queries  int
	LeafIOs  int
	InnerIOs int

	ExcessLoss  float64
	UtilLoss    float64
	ClusterLoss float64
	OptimalIOs  float64

	// InnerExcessLoss is the inner-node analogue of ExcessLoss (footnote 6).
	InnerExcessLoss float64
}

// TotalExcess returns leaf plus inner excess coverage loss — the
// whole-tree number footnote 6 compares across access methods.
func (t Totals) TotalExcess() float64 { return t.ExcessLoss + t.InnerExcessLoss }

// TotalIOs returns leaf plus inner page reads.
func (t Totals) TotalIOs() int { return t.LeafIOs + t.InnerIOs }

// ExcessPct returns excess coverage loss as a fraction of leaf I/Os.
func (t Totals) ExcessPct() float64 { return pct(t.ExcessLoss, t.LeafIOs) }

// UtilPct returns utilization loss as a fraction of leaf I/Os.
func (t Totals) UtilPct() float64 { return pct(t.UtilLoss, t.LeafIOs) }

// ClusterPct returns clustering loss as a fraction of leaf I/Os.
func (t Totals) ClusterPct() float64 { return pct(t.ClusterLoss, t.LeafIOs) }

func pct(loss float64, total int) float64 {
	if total == 0 {
		return 0
	}
	return loss / float64(total)
}

// Report is the outcome of analyzing one access method under one workload.
type Report struct {
	AM         string
	TreeHeight int
	NumPages   int
	NumLeaves  int
	LeafCap    int
	TargetUtil float64

	PerQuery []QueryProfile
	Nodes    map[page.PageID]*NodeProfile
	Totals   Totals

	// LevelIOs[l] is the number of workload page reads at tree level l
	// (0 = leaves). For tall trees (JB especially) it shows where the
	// Figure-16 inner-node cost concentrates.
	LevelIOs []int

	// Pool, present when the tree's store exposes buffer statistics (a
	// demand-paged index), is the delta of the real pool counters across the
	// workload execution — the measured counterpart of the simulated
	// LevelIOs, produced by the very same traversal events (each traced
	// access is a store pin).
	Pool *page.PoolStats
}

// AvgLeafIOsPerQuery returns the mean leaf I/Os per workload query.
func (r *Report) AvgLeafIOsPerQuery() float64 {
	if r.Totals.Queries == 0 {
		return 0
	}
	return float64(r.Totals.LeafIOs) / float64(r.Totals.Queries)
}

// AvgTotalIOsPerQuery returns the mean total I/Os per workload query.
func (r *Report) AvgTotalIOsPerQuery() float64 {
	if r.Totals.Queries == 0 {
		return 0
	}
	return float64(r.Totals.TotalIOs()) / float64(r.Totals.Queries)
}

// PagesHitFraction returns the mean fraction of the tree's pages one query
// touches — the paper's "none of our AMs hit more than one in 50 of the AM
// total pages" check (§6).
func (r *Report) PagesHitFraction() float64 {
	if r.NumPages == 0 {
		return 0
	}
	return r.AvgTotalIOsPerQuery() / float64(r.NumPages)
}

// dedupeTrace returns a trace containing the first access to each distinct
// page, preserving order. seen is caller-provided scratch (cleared here) so a
// worker replaying many queries reuses one map instead of allocating one per
// query.
func dedupeTrace(raw *gist.Trace, seen map[page.PageID]bool) *gist.Trace {
	clear(seen)
	out := &gist.Trace{Accesses: make([]gist.Access, 0, len(raw.Accesses))}
	for _, a := range raw.Accesses {
		if !seen[a.Page] {
			seen[a.Page] = true
			out.Accesses = append(out.Accesses, a)
		}
	}
	return out
}

// Analyze executes the workload against the tree and computes the amdb
// metrics. The tree is not modified.
func Analyze(tree *gist.Tree, queries []Query, cfg Config) (*Report, error) {
	return AnalyzeCtx(context.Background(), tree, queries, cfg)
}

// AnalyzeCtx is Analyze with cancellation: ctx is threaded into every query
// execution, so cancellation lands mid-traversal and the first context
// error aborts the analysis.
func AnalyzeCtx(ctx context.Context, tree *gist.Tree, queries []Query, cfg Config) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.TargetUtil == 0 {
		cfg.TargetUtil = 0.8
	}
	if cfg.TargetUtil < 0 || cfg.TargetUtil > 1 {
		return nil, fmt.Errorf("amdb: TargetUtil %v outside (0, 1]", cfg.TargetUtil)
	}

	r := &Report{
		AM:         tree.Ext().Name(),
		TreeHeight: tree.Height(),
		NumPages:   tree.NumPages(),
		NumLeaves:  tree.NumLeaves(),
		LeafCap:    tree.LeafCapacity(),
		TargetUtil: cfg.TargetUtil,
		Nodes:      make(map[page.PageID]*NodeProfile),
	}

	// Leaf utilizations and the dense RID numbering for the partitioner,
	// plus each leaf's chain of inner ancestors (for inner excess). The scan
	// runs pin→use→unpin like any traversal, so it works over a demand-paged
	// store too (where it faults in each page once).
	ridIndex := make(map[int64]int, tree.Len())
	ancestors := make(map[page.PageID][]page.PageID)
	store := tree.Store()
	var index func(id page.PageID, chain []page.PageID) error
	index = func(id page.PageID, chain []page.PageID) error {
		n, err := store.Pin(id)
		if err != nil {
			return err
		}
		defer store.Unpin(n)
		if n.IsLeaf() {
			r.Nodes[n.ID()] = &NodeProfile{
				Utilization: float64(n.NumEntries()) / float64(tree.LeafCapacity()),
			}
			for i := 0; i < n.NumEntries(); i++ {
				rid := n.LeafRID(i)
				if _, dup := ridIndex[rid]; !dup {
					ridIndex[rid] = len(ridIndex)
				}
			}
			ancestors[n.ID()] = append([]page.PageID(nil), chain...)
			return nil
		}
		chain = append(chain, n.ID())
		for i := 0; i < n.NumEntries(); i++ {
			if err := index(n.ChildID(i), chain); err != nil {
				return err
			}
		}
		return nil
	}
	tree.RLock()
	err := index(tree.RootID(), nil)
	tree.RUnlock()
	if err != nil {
		return nil, err
	}

	// Snapshot real buffer-pool counters (demand-paged stores only) after
	// the structure scan, so the delta reported below covers exactly the
	// workload's traversals.
	statsProvider, hasPool := store.(gist.StatsProvider)
	var poolBefore page.PoolStats
	if hasPool {
		poolBefore = statsProvider.PoolStats()
	}

	// Execute the workload.
	r.PerQuery = make([]QueryProfile, len(queries))
	edges := make([][]int, 0, len(queries))
	search := searchFunc(cfg.Mode)

	// Execute the queries in parallel — searches only read the tree — then
	// compute the metrics sequentially.
	outcomes := make([]outcome, len(queries))
	if err := runQueries(ctx, tree, queries, search, cfg.Parallelism, outcomes); err != nil {
		return nil, err
	}

	r.LevelIOs = make([]int, tree.Height())
	for qi := range queries {
		results, trace := outcomes[qi].results, outcomes[qi].trace
		for _, a := range trace.Accesses {
			if a.Level < len(r.LevelIOs) {
				r.LevelIOs[a.Level]++
			}
		}
		qp := &r.PerQuery[qi]
		qp.Results = results
		qp.LeafIOs = trace.LeafAccesses()
		qp.InnerIOs = trace.InnerAccesses()

		useful := make(map[page.PageID]bool)
		usefulInner := make(map[page.PageID]bool)
		for _, res := range results {
			if !useful[res.Leaf] {
				useful[res.Leaf] = true
				for _, anc := range ancestors[res.Leaf] {
					usefulInner[anc] = true
				}
			}
		}
		qp.UsefulIOs = len(useful)
		qp.ExcessLoss = float64(qp.LeafIOs - qp.UsefulIOs)
		for _, a := range trace.Accesses {
			if a.Level > 0 && !usefulInner[a.Page] {
				qp.InnerExcess++
			}
		}

		for _, pid := range trace.LeafPages() {
			np := r.Nodes[pid]
			if np == nil {
				// The page appeared after the structure snapshot (a
				// concurrent writer split a node). Profile it with full
				// utilization so it charges no utilization loss.
				np = &NodeProfile{Utilization: 1}
				r.Nodes[pid] = np
			}
			np.Accesses++
			if !useful[pid] {
				np.EmptyAccesses++
			}
		}
		// Utilization loss: useful pages emptier than the target waste a
		// fraction of their access.
		for pid := range useful {
			if np := r.Nodes[pid]; np != nil && np.Utilization < cfg.TargetUtil {
				qp.UtilLoss += 1 - np.Utilization/cfg.TargetUtil
			}
		}

		edge := make([]int, 0, len(results))
		seen := make(map[int]bool, len(results))
		for _, res := range results {
			if v, ok := ridIndex[res.RID]; ok && !seen[v] {
				seen[v] = true
				edge = append(edge, v)
			}
		}
		edges = append(edges, edge)
	}

	// Optimal clustering baseline.
	var spans []int
	if !cfg.SkipOptimal && len(ridIndex) > 0 {
		capacity := int(cfg.TargetUtil * float64(tree.LeafCapacity()))
		if capacity < 1 {
			capacity = 1
		}
		h := hypergraph.Hypergraph{NumVertices: len(ridIndex), Edges: edges}
		part := hypergraph.PartitionConnectivity(h, hypergraph.Options{
			Capacity: capacity,
			Seed:     cfg.Seed,
		})
		spans = part.EdgeSpans(h)
	}

	for qi := range r.PerQuery {
		qp := &r.PerQuery[qi]
		if spans != nil {
			qp.ClusterLoss = math.Max(0,
				float64(qp.UsefulIOs)-qp.UtilLoss-float64(spans[qi]))
			qp.OptimalIOs = float64(qp.UsefulIOs) - qp.UtilLoss - qp.ClusterLoss
		}
		r.Totals.LeafIOs += qp.LeafIOs
		r.Totals.InnerIOs += qp.InnerIOs
		r.Totals.InnerExcessLoss += float64(qp.InnerExcess)
		r.Totals.ExcessLoss += qp.ExcessLoss
		r.Totals.UtilLoss += qp.UtilLoss
		r.Totals.ClusterLoss += qp.ClusterLoss
		r.Totals.OptimalIOs += qp.OptimalIOs
	}
	r.Totals.Queries = len(queries)
	if hasPool {
		d := statsProvider.PoolStats().Sub(poolBefore)
		r.Pool = &d
	}
	return r, nil
}

// searchFn executes one k-NN query with cancellation and tracing, appending
// the results to the given buffer — the Into shape, so the replay loop
// controls every result allocation.
type searchFn func(context.Context, *gist.Tree, geom.Vector, int, *gist.Trace, []nn.Result) ([]nn.Result, error)

// searchFunc maps an execution mode to its search implementation.
func searchFunc(mode SearchMode) searchFn {
	switch mode {
	case ModeBestFirst:
		return nn.SearchCtxInto
	case ModeExpanding:
		return nn.SearchExpandingCtxInto
	case ModeHarvest:
		return nn.SearchApproxCtxInto
	default:
		return nn.SearchSphereCtxInto
	}
}

// outcome is one executed query awaiting metric computation.
type outcome struct {
	results []nn.Result
	trace   *gist.Trace
}

// runQueries executes the workload across a pool of parallelism workers
// (0 = GOMAXPROCS), each query into its own outcomes slot so downstream
// aggregation in query order is deterministic regardless of scheduling.
// The first context error aborts the run.
func runQueries(ctx context.Context, tree *gist.Tree, queries []Query, search searchFn, parallelism int, outcomes []outcome) error {
	workers := parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	if workers < 1 {
		workers = 1
	}
	next := make(chan int, len(queries))
	for qi := range queries {
		next <- qi
	}
	close(next)
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Worker-local scratch, reused across every query this worker
			// executes: the raw trace's access buffer and the dedupe map.
			// Only the per-query outputs (results, deduped trace) are
			// allocated fresh, since they outlive the loop in outcomes.
			var raw gist.Trace
			seen := make(map[page.PageID]bool)
			for qi := range next {
				if ctx.Err() != nil {
					return
				}
				q := queries[qi]
				raw.Accesses = raw.Accesses[:0]
				results, err := search(ctx, tree, q.Center, q.K, &raw, make([]nn.Result, 0, q.K))
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
				// A query's pages stay buffered for the duration of the
				// query (the expanding-sphere execution re-descends from
				// the root on every radius, and §3.2's cost argument
				// assumes the hot path is cached), so the I/O cost of a
				// query is its distinct page set.
				outcomes[qi] = outcome{results: results, trace: dedupeTrace(&raw, seen)}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

package amdb

import (
	"context"
	"time"

	"blobindex/internal/gist"
	"blobindex/internal/nn"
)

// ReplayResult is the outcome of a workload replay: the per-query result
// sets in workload order plus the aggregate I/O counts, without the loss
// analysis. The aggregates are computed in query order after all workers
// finish, so they are identical for every parallelism.
type ReplayResult struct {
	Queries  int
	LeafIOs  int
	InnerIOs int
	Elapsed  time.Duration
	// Results[i] holds query i's neighbors, nearest first.
	Results [][]nn.Result
}

// TotalIOs returns leaf plus inner page reads across the replay.
func (r *ReplayResult) TotalIOs() int { return r.LeafIOs + r.InnerIOs }

// QueriesPerSecond returns the replay throughput.
func (r *ReplayResult) QueriesPerSecond() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Queries) / r.Elapsed.Seconds()
}

// Replay executes the workload's queries with the exact best-first search
// across a pool of parallelism workers (0 = GOMAXPROCS) and returns the
// results and I/O totals — the serving fast path, as opposed to Analyze's
// instrumented loss decomposition. Query i's results always land in slot i
// and each query carries its own trace, so the outcome is deterministic:
// replaying at any parallelism returns result-for-result what a sequential
// loop over nn.Search would. The first context error aborts the replay.
func Replay(ctx context.Context, tree *gist.Tree, queries []Query, parallelism int) (*ReplayResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	outcomes := make([]outcome, len(queries))
	if err := runQueries(ctx, tree, queries, nn.SearchCtxInto, parallelism, outcomes); err != nil {
		return nil, err
	}
	res := &ReplayResult{
		Queries: len(queries),
		Elapsed: time.Since(start),
		Results: make([][]nn.Result, len(queries)),
	}
	for qi := range outcomes {
		res.Results[qi] = outcomes[qi].results
		res.LeafIOs += outcomes[qi].trace.LeafAccesses()
		res.InnerIOs += outcomes[qi].trace.InnerAccesses()
	}
	return res, nil
}

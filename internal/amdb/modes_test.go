package amdb

import (
	"math/rand"
	"testing"

	"blobindex/internal/am"
)

// All exact modes must report identical result sets; their I/O profiles may
// differ but never below the leaves that hold results.
func TestModesConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	pts := clusteredPoints(rng, 3000, 3, 10)
	tree := buildBulk(t, am.KindRTree, pts, 3)
	queries := makeWorkload(rng, pts, 20, 25)

	reports := map[string]*Report{}
	for name, mode := range map[string]SearchMode{
		"sphere":    ModeSphere,
		"bestfirst": ModeBestFirst,
		"expanding": ModeExpanding,
	} {
		rep, err := Analyze(tree, queries, Config{Seed: 1, Mode: mode, SkipOptimal: true})
		if err != nil {
			t.Fatal(err)
		}
		reports[name] = rep
	}
	// Exact modes agree on result distances.
	for qi := range queries {
		a := reports["sphere"].PerQuery[qi].Results
		b := reports["bestfirst"].PerQuery[qi].Results
		c := reports["expanding"].PerQuery[qi].Results
		if len(a) != len(b) || len(a) != len(c) {
			t.Fatalf("query %d: result counts differ", qi)
		}
		for i := range a {
			if a[i].Dist2 != b[i].Dist2 || a[i].Dist2 != c[i].Dist2 {
				t.Fatalf("query %d result %d: distances differ across modes", qi, i)
			}
		}
	}
	// Best-first is I/O-optimal: no exact mode can read fewer leaves.
	bf := reports["bestfirst"].Totals.LeafIOs
	if reports["sphere"].Totals.LeafIOs < bf {
		t.Errorf("sphere mode read fewer leaves (%d) than best-first (%d)",
			reports["sphere"].Totals.LeafIOs, bf)
	}
	if reports["expanding"].Totals.LeafIOs < bf {
		t.Errorf("expanding mode read fewer leaves (%d) than best-first (%d)",
			reports["expanding"].Totals.LeafIOs, bf)
	}
}

func TestModeHarvestApproximate(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	pts := clusteredPoints(rng, 2000, 2, 8)
	tree := buildBulk(t, am.KindRTree, pts, 2)
	queries := makeWorkload(rng, pts, 15, 30)
	rep, err := Analyze(tree, queries, Config{Seed: 1, Mode: ModeHarvest, SkipOptimal: true})
	if err != nil {
		t.Fatal(err)
	}
	for qi, qp := range rep.PerQuery {
		if len(qp.Results) != 30 {
			t.Fatalf("query %d returned %d results", qi, len(qp.Results))
		}
	}
	// The harvest reads the fewest leaves of all modes.
	exact, err := Analyze(tree, queries, Config{Seed: 1, Mode: ModeBestFirst, SkipOptimal: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Totals.LeafIOs > exact.Totals.LeafIOs {
		t.Errorf("harvest read more leaves (%d) than exact best-first (%d)",
			rep.Totals.LeafIOs, exact.Totals.LeafIOs)
	}
}

// Per-query deduplication: expanding mode re-visits pages across sphere
// iterations, but the report counts distinct pages per query.
func TestExpandingDedup(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	pts := clusteredPoints(rng, 1500, 2, 6)
	tree := buildBulk(t, am.KindRTree, pts, 2)
	queries := makeWorkload(rng, pts, 10, 20)
	rep, err := Analyze(tree, queries, Config{Seed: 1, Mode: ModeExpanding, SkipOptimal: true})
	if err != nil {
		t.Fatal(err)
	}
	maxPerQuery := tree.NumLeaves()
	for qi, qp := range rep.PerQuery {
		if qp.LeafIOs > maxPerQuery {
			t.Fatalf("query %d counted %d leaf IOs, tree has only %d leaves",
				qi, qp.LeafIOs, maxPerQuery)
		}
	}
}

package amdb

import (
	"math"
	"math/rand"
	"testing"

	"blobindex/internal/am"
	"blobindex/internal/geom"
	"blobindex/internal/gist"
	"blobindex/internal/str"
)

func clusteredPoints(rng *rand.Rand, n, dim, clusters int) []gist.Point {
	centers := make([]geom.Vector, clusters)
	for i := range centers {
		c := make(geom.Vector, dim)
		for d := range c {
			c[d] = rng.Float64() * 100
		}
		centers[i] = c
	}
	pts := make([]gist.Point, n)
	for i := range pts {
		c := centers[rng.Intn(clusters)]
		v := make(geom.Vector, dim)
		for d := range v {
			v[d] = c[d] + rng.NormFloat64()*3
		}
		pts[i] = gist.Point{Key: v, RID: int64(i)}
	}
	return pts
}

func buildBulk(t *testing.T, kind am.Kind, pts []gist.Point, dim int) *gist.Tree {
	t.Helper()
	ext, err := am.New(kind, am.Options{AMAPSamples: 64, XJBX: 4})
	if err != nil {
		t.Fatal(err)
	}
	cfg := gist.Config{Dim: dim, PageSize: 2048}
	tmp, err := gist.New(ext, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ordered := make([]gist.Point, len(pts))
	copy(ordered, pts)
	str.Order(ordered, tmp.LeafCapacity())
	tree, err := gist.BulkLoad(ext, cfg, ordered, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func makeWorkload(rng *rand.Rand, pts []gist.Point, n, k int) []Query {
	qs := make([]Query, n)
	for i := range qs {
		qs[i] = Query{Center: pts[rng.Intn(len(pts))].Key.Clone(), K: k}
	}
	return qs
}

func TestAnalyzeDecomposition(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := clusteredPoints(rng, 3000, 2, 12)
	tree := buildBulk(t, am.KindRTree, pts, 2)
	queries := makeWorkload(rng, pts, 40, 20)

	rep, err := Analyze(tree, queries, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.AM != "rtree" {
		t.Errorf("AM = %q", rep.AM)
	}
	if rep.Totals.Queries != 40 {
		t.Errorf("Queries = %d", rep.Totals.Queries)
	}
	// Per query: LeafIOs = optimal + cluster + util + excess, within float
	// tolerance (the decomposition is exact by construction).
	for i, qp := range rep.PerQuery {
		sum := qp.OptimalIOs + qp.ClusterLoss + qp.UtilLoss + qp.ExcessLoss
		if math.Abs(sum-float64(qp.LeafIOs)) > 1e-6 {
			t.Errorf("query %d: decomposition %f != leaf IOs %d", i, sum, qp.LeafIOs)
		}
		if qp.UsefulIOs > qp.LeafIOs {
			t.Errorf("query %d: useful %d > leaf %d", i, qp.UsefulIOs, qp.LeafIOs)
		}
		if qp.OptimalIOs > float64(qp.UsefulIOs)+1e-9 {
			t.Errorf("query %d: optimal %f > useful %d — ideal tree can't be worse",
				i, qp.OptimalIOs, qp.UsefulIOs)
		}
		if len(qp.Results) != 20 {
			t.Errorf("query %d returned %d results", i, len(qp.Results))
		}
	}
	// Totals equal the sum of per-query numbers.
	var leaf int
	var excess float64
	for _, qp := range rep.PerQuery {
		leaf += qp.LeafIOs
		excess += qp.ExcessLoss
	}
	if leaf != rep.Totals.LeafIOs || math.Abs(excess-rep.Totals.ExcessLoss) > 1e-9 {
		t.Error("totals do not match per-query sums")
	}
	// Percentages are in [0, 1] and sum to ≤ 1.
	p := rep.Totals.ExcessPct() + rep.Totals.UtilPct() + rep.Totals.ClusterPct()
	if p < 0 || p > 1+1e-9 {
		t.Errorf("loss fractions sum to %f", p)
	}
}

func TestAnalyzeNodeProfiles(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := clusteredPoints(rng, 2000, 2, 8)
	tree := buildBulk(t, am.KindRTree, pts, 2)
	queries := makeWorkload(rng, pts, 25, 15)

	rep, err := Analyze(tree, queries, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Nodes) != rep.NumLeaves {
		t.Errorf("node profiles for %d leaves, tree has %d", len(rep.Nodes), rep.NumLeaves)
	}
	var accesses, empty int
	for _, np := range rep.Nodes {
		if np.EmptyAccesses > np.Accesses {
			t.Error("empty accesses exceed accesses")
		}
		if np.Utilization < 0 || np.Utilization > 1 {
			t.Errorf("utilization %f out of range", np.Utilization)
		}
		accesses += np.Accesses
		empty += np.EmptyAccesses
	}
	if accesses != rep.Totals.LeafIOs {
		t.Errorf("node accesses %d != total leaf IOs %d", accesses, rep.Totals.LeafIOs)
	}
	if float64(empty) != rep.Totals.ExcessLoss {
		t.Errorf("node empty accesses %d != excess loss %f", empty, rep.Totals.ExcessLoss)
	}
}

func TestAnalyzeSkipOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := clusteredPoints(rng, 1000, 2, 5)
	tree := buildBulk(t, am.KindRTree, pts, 2)
	rep, err := Analyze(tree, makeWorkload(rng, pts, 10, 10), Config{SkipOptimal: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Totals.OptimalIOs != 0 || rep.Totals.ClusterLoss != 0 {
		t.Error("SkipOptimal should zero the clustering numbers")
	}
	if rep.Totals.LeafIOs == 0 {
		t.Error("leaf IOs must still be measured")
	}
}

func TestAnalyzeBadTargetUtil(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := clusteredPoints(rng, 100, 2, 2)
	tree := buildBulk(t, am.KindRTree, pts, 2)
	if _, err := Analyze(tree, nil, Config{TargetUtil: 1.5}); err == nil {
		t.Error("TargetUtil > 1 should error")
	}
}

func TestAnalyzeEmptyWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := clusteredPoints(rng, 200, 2, 2)
	tree := buildBulk(t, am.KindRTree, pts, 2)
	rep, err := Analyze(tree, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Totals.Queries != 0 || rep.Totals.LeafIOs != 0 {
		t.Error("empty workload should produce zero totals")
	}
	if rep.AvgLeafIOsPerQuery() != 0 || rep.PagesHitFraction() != 0 {
		t.Error("averages over zero queries should be zero")
	}
}

// The paper's central finding: for a bulk-loaded R-tree the dominant loss is
// excess coverage (Table 2 / Figure 7); and JB's excess coverage is
// negligible by comparison (Figure 15).
func TestExcessCoverageDominatesForRTreeAndJBFixesIt(t *testing.T) {
	// The paper's regime: 5-D data, result sets larger than a leaf, and a
	// workload dense enough that every point is retrieved several times.
	rng := rand.New(rand.NewSource(6))
	pts := clusteredPoints(rng, 4000, 5, 15)
	queries := makeWorkload(rng, pts, 150, 60)

	rt := buildBulk(t, am.KindRTree, pts, 5)
	rtRep, err := Analyze(rt, queries, Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if rtRep.Totals.ExcessLoss <= rtRep.Totals.UtilLoss ||
		rtRep.Totals.ExcessLoss <= rtRep.Totals.ClusterLoss {
		t.Errorf("R-tree losses: excess=%.1f util=%.1f cluster=%.1f; excess should dominate",
			rtRep.Totals.ExcessLoss, rtRep.Totals.UtilLoss, rtRep.Totals.ClusterLoss)
	}

	jb := buildBulk(t, am.KindJB, pts, 5)
	jbRep, err := Analyze(jb, queries, Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if jbRep.Totals.ExcessLoss >= rtRep.Totals.ExcessLoss {
		t.Errorf("JB excess %.1f should be below R-tree excess %.1f",
			jbRep.Totals.ExcessLoss, rtRep.Totals.ExcessLoss)
	}
	if jbRep.Totals.LeafIOs >= rtRep.Totals.LeafIOs {
		t.Errorf("JB leaf IOs %d should be below R-tree leaf IOs %d",
			jbRep.Totals.LeafIOs, rtRep.Totals.LeafIOs)
	}
}

func TestLevelIOs(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	pts := clusteredPoints(rng, 3000, 3, 12)
	tree := buildBulk(t, am.KindRTree, pts, 3)
	queries := makeWorkload(rng, pts, 25, 20)
	rep, err := Analyze(tree, queries, Config{Seed: 61, SkipOptimal: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.LevelIOs) != tree.Height() {
		t.Fatalf("LevelIOs for %d levels, height %d", len(rep.LevelIOs), tree.Height())
	}
	if rep.LevelIOs[0] != rep.Totals.LeafIOs {
		t.Errorf("level 0 IOs %d != leaf IOs %d", rep.LevelIOs[0], rep.Totals.LeafIOs)
	}
	var inner int
	for _, c := range rep.LevelIOs[1:] {
		inner += c
	}
	if inner != rep.Totals.InnerIOs {
		t.Errorf("inner level IOs %d != inner total %d", inner, rep.Totals.InnerIOs)
	}
	// Every query reads the root once (deduped), so the top level count
	// equals the query count.
	if top := rep.LevelIOs[len(rep.LevelIOs)-1]; top != len(queries) {
		t.Errorf("root reads %d != queries %d", top, len(queries))
	}
}

func TestInnerExcessAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	pts := clusteredPoints(rng, 3000, 3, 12)
	tree := buildBulk(t, am.KindRTree, pts, 3)
	queries := makeWorkload(rng, pts, 25, 20)
	rep, err := Analyze(tree, queries, Config{Seed: 60, SkipOptimal: true})
	if err != nil {
		t.Fatal(err)
	}
	for qi, qp := range rep.PerQuery {
		if qp.InnerExcess < 0 || qp.InnerExcess > qp.InnerIOs {
			t.Fatalf("query %d: inner excess %d outside [0, %d]",
				qi, qp.InnerExcess, qp.InnerIOs)
		}
	}
	if rep.Totals.TotalExcess() != rep.Totals.ExcessLoss+rep.Totals.InnerExcessLoss {
		t.Error("TotalExcess mismatch")
	}
	// The root subtree always contributes results, so for a height-2 tree
	// inner excess must be strictly below inner IOs whenever results exist.
	if rep.Totals.InnerExcessLoss >= float64(rep.Totals.InnerIOs) && rep.Totals.InnerIOs > 0 {
		t.Error("every inner access counted as excess — ancestors not credited")
	}
}

// Insertion loading must be far worse than bulk loading for the R-tree
// (Table 2's contrast).
func TestInsertionLoadedWorseThanBulk(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := clusteredPoints(rng, 2500, 2, 10)
	queries := makeWorkload(rng, pts, 30, 20)

	bulk := buildBulk(t, am.KindRTree, pts, 2)
	ext, _ := am.New(am.KindRTree, am.Options{})
	ins, err := gist.New(ext, gist.Config{Dim: 2, PageSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if err := ins.Insert(p); err != nil {
			t.Fatal(err)
		}
	}

	bulkRep, err := Analyze(bulk, queries, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	insRep, err := Analyze(ins, queries, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if insRep.Totals.ExcessLoss <= bulkRep.Totals.ExcessLoss {
		t.Errorf("insertion-loaded excess %.1f should exceed bulk-loaded %.1f",
			insRep.Totals.ExcessLoss, bulkRep.Totals.ExcessLoss)
	}
	if insRep.Totals.LeafIOs <= bulkRep.Totals.LeafIOs {
		t.Errorf("insertion-loaded leaf IOs %d should exceed bulk-loaded %d",
			insRep.Totals.LeafIOs, bulkRep.Totals.LeafIOs)
	}
}

// Package clusterbench measures the sharded serving tier (internal/cluster)
// end to end: it partitions the scenario's corpus across N shard daemons
// served over real TCP listeners (shard 0 with a replica), fronts them with
// the scatter-gather router, and runs three legs — a merge-identity check
// against the unpartitioned single-index oracle, a fan-out throughput
// measurement under concurrent clients, and a failover probe that kills a
// primary mid-run and asserts the replica serves byte-identical results.
// It lives outside internal/experiments for the same reason servebench
// does: it imports the blobindex facade.
package clusterbench

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"blobindex"
	"blobindex/internal/apiclient"
	"blobindex/internal/cluster"
	"blobindex/internal/experiments"
	"blobindex/internal/server"
)

// ClusterParams sizes the cluster benchmark.
type ClusterParams struct {
	// Shards is the partition count. Default 3.
	Shards int
	// Partition is the scheme, cluster.PartitionHash or PartitionSpace.
	// Default hash.
	Partition string
	// Clients is the number of concurrent load-generator clients in the
	// throughput leg. Default 32.
	Clients int
	// Requests is the total request count in the throughput leg. Default 2048.
	Requests int
	// Method is the served access method. Default xjb.
	Method experiments.AMKind
	// PoolPages is each shard's buffer pool budget (shards serve saved
	// pagefiles demand-paged, the deployment regime). Default
	// blobindex.DefaultPoolPages.
	PoolPages int
}

// DefaultClusterParams returns the artifact-scale shape: 3 hash-partitioned
// shards plus a replica, 32 concurrent clients.
func DefaultClusterParams() ClusterParams {
	return ClusterParams{Shards: 3, Partition: cluster.PartitionHash, Clients: 32, Requests: 2048}
}

// IdentityLeg reports one merge-identity pass: every router answer compared
// bit-for-bit (RID + Dist and Dist2 float bits) against the oracle.
type IdentityLeg struct {
	Queries    int   `json:"queries"`
	Verified   int   `json:"verified"`
	Mismatches int   `json:"mismatches"`
	Errors     int   `json:"errors"`
	Failovers  int64 `json:"failovers,omitempty"`
}

// ClusterResult is the committed artifact of blobbench's "cluster"
// experiment (CLUSTER_PR9.json).
type ClusterResult struct {
	Blobs     int    `json:"blobs"`
	Dim       int    `json:"dim"`
	Method    string `json:"method"`
	Shards    int    `json:"shards"`
	Partition string `json:"partition"`
	Replicas  int    `json:"replicas"`

	// Identity is the fault-free merge-identity leg: scatter-gather over
	// all shards vs the unpartitioned oracle, k-NN and range.
	Identity IdentityLeg `json:"identity"`

	// Throughput is the fan-out load leg.
	Clients        int     `json:"clients"`
	Requests       int     `json:"requests"`
	Errors         int     `json:"errors"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	QPS            float64 `json:"qps"`
	P50Us          float64 `json:"p50_us"`
	P95Us          float64 `json:"p95_us"`
	P99Us          float64 `json:"p99_us"`
	ShardRequests  int64   `json:"shard_requests"`

	// Failover is the identity leg rerun with shard 0's primary hard-killed:
	// every query must still succeed, byte-identical, via the replica.
	Failover IdentityLeg `json:"failover"`

	Pass bool `json:"pass"`
}

// member is one served daemon in the benchmark cluster.
type member struct {
	idx *blobindex.Index
	hs  *http.Server
	ln  net.Listener
}

func (m *member) close() {
	if m.hs != nil {
		m.hs.Close()
	}
	if m.idx != nil {
		m.idx.Close()
	}
}

func serveMember(idx *blobindex.Index) (*member, error) {
	// Default server config: result cache on, as blobserved deploys it.
	srv, err := server.New(server.Config{Index: idx})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	m := &member{idx: idx, hs: &http.Server{Handler: srv.Handler()}, ln: ln}
	go m.hs.Serve(ln)
	return m, nil
}

// ClusterBench runs the cluster experiment. It fails (Pass=false) if any
// merge-identity comparison diverges, the failover leg drops a query, or no
// failover is observed after the kill.
func ClusterBench(s *experiments.Scenario, p ClusterParams) (*ClusterResult, error) {
	if p.Shards <= 0 {
		p.Shards = 3
	}
	if p.Partition == "" {
		p.Partition = cluster.PartitionHash
	}
	if p.Clients <= 0 {
		p.Clients = 32
	}
	if p.Requests <= 0 {
		p.Requests = 2048
	}
	if p.Method == "" {
		p.Method = "xjb"
	}
	if p.PoolPages <= 0 {
		p.PoolPages = blobindex.DefaultPoolPages
	}
	wl, err := s.Workload()
	if err != nil {
		return nil, err
	}
	reduced := s.Reduced(s.Params.Dim)
	points := make([]blobindex.Point, len(reduced))
	for i, v := range reduced {
		points[i] = blobindex.Point{Key: v, RID: int64(i)}
	}
	opts := blobindex.Options{
		Method:      blobindex.Method(p.Method),
		Dim:         s.Params.Dim,
		PageSize:    s.Params.PageSize,
		XJBBites:    s.Params.XJBX,
		AMAPSamples: s.Params.AMAPSamples,
		Seed:        s.Params.Seed,
	}
	oracle, err := blobindex.Build(points, opts)
	if err != nil {
		return nil, err
	}

	groups, man, err := cluster.Partition(points, p.Partition, p.Shards, s.Params.Seed, s.Params.Dim, string(p.Method))
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "blobcluster")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// Serve every shard demand-paged from a saved pagefile — the deployment
	// regime — with a replica for shard 0 opened over the same file.
	var members []*member
	defer func() {
		for _, m := range members {
			m.close()
		}
	}()
	openAndServe := func(path string) (*member, error) {
		idx, err := blobindex.OpenWithOptions(path, blobindex.OpenOptions{PoolPages: p.PoolPages})
		if err != nil {
			return nil, err
		}
		m, err := serveMember(idx)
		if err != nil {
			idx.Close()
			return nil, err
		}
		members = append(members, m)
		return m, nil
	}
	for i, g := range groups {
		idx, err := blobindex.Build(g, opts)
		if err != nil {
			return nil, err
		}
		path := filepath.Join(dir, fmt.Sprintf("shard-%d.idx", i))
		if err := idx.Save(path); err != nil {
			return nil, err
		}
		m, err := openAndServe(path)
		if err != nil {
			return nil, err
		}
		man.Shards[i].Pagefile = path
		man.Shards[i].Members = []string{m.ln.Addr().String()}
	}
	replica, err := openAndServe(man.Shards[0].Pagefile)
	if err != nil {
		return nil, err
	}
	man.Shards[0].Members = append(man.Shards[0].Members, replica.ln.Addr().String())

	router, err := cluster.NewRouter(cluster.Config{
		Manifest:       man,
		HealthInterval: 100 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	defer router.Close()
	front, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	fhs := &http.Server{Handler: router.Handler()}
	go fhs.Serve(front)
	defer fhs.Close()
	cli := apiclient.New(front.Addr().String(), apiclient.Options{})

	r := &ClusterResult{
		Blobs:     len(reduced),
		Dim:       s.Params.Dim,
		Method:    string(p.Method),
		Shards:    p.Shards,
		Partition: p.Partition,
		Replicas:  1,
		Clients:   p.Clients,
	}

	// Leg 1: merge identity, fault-free. k-NN at the workload's k plus a
	// range query at the k-th-neighbor radius (guaranteed non-trivial).
	ctx := context.Background()
	identity := func() IdentityLeg {
		var leg IdentityLeg
		for _, q := range wl.Queries {
			leg.Queries++
			want, err := oracle.Search(ctx, blobindex.SearchRequest{Query: q.Center, K: q.K})
			if err != nil {
				leg.Errors++
				continue
			}
			got, err := cli.KNN(ctx, server.KNNRequest{Query: q.Center, K: q.K})
			if err != nil {
				leg.Errors++
				continue
			}
			if !sameBits(got.Neighbors, want.Neighbors) {
				leg.Mismatches++
				continue
			}
			if n := len(want.Neighbors); n > 0 {
				radius := want.Neighbors[n-1].Dist
				rwant, err := oracle.Search(ctx, blobindex.SearchRequest{Query: q.Center, Radius: radius})
				if err != nil {
					leg.Errors++
					continue
				}
				rgot, err := cli.Range(ctx, server.RangeRequest{Query: q.Center, Radius: radius})
				if err != nil {
					leg.Errors++
					continue
				}
				if !sameBits(rgot.Neighbors, rwant.Neighbors) {
					leg.Mismatches++
					continue
				}
			}
			leg.Verified++
		}
		return leg
	}
	r.Identity = identity()

	// Leg 2: fan-out throughput under concurrent clients.
	reqs := make([]server.KNNRequest, len(wl.Queries))
	for i, q := range wl.Queries {
		reqs[i] = server.KNNRequest{Query: q.Center, K: q.K}
	}
	perClient := (p.Requests + p.Clients - 1) / p.Clients
	total := perClient * p.Clients
	clientLats := make([][]time.Duration, p.Clients)
	var errCount atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < p.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lats := make([]time.Duration, 0, perClient)
			off := c * len(reqs) / p.Clients
			for i := 0; i < perClient; i++ {
				t0 := time.Now()
				if _, err := cli.KNN(ctx, reqs[(off+i)%len(reqs)]); err != nil {
					errCount.Add(1)
					continue
				}
				lats = append(lats, time.Since(t0))
			}
			clientLats[c] = lats
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var lats []time.Duration
	for _, l := range clientLats {
		lats = append(lats, l...)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(q float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		return float64(lats[int(q*float64(len(lats)-1))].Nanoseconds()) / 1e3
	}
	r.Requests = total
	r.Errors = int(errCount.Load())
	r.ElapsedSeconds = elapsed.Seconds()
	r.QPS = float64(total) / elapsed.Seconds()
	r.P50Us, r.P95Us, r.P99Us = pct(0.50), pct(0.95), pct(0.99)
	r.ShardRequests = router.Stats().Fanout.ShardRequests

	// Leg 3: failover probe. Hard-kill shard 0's primary (members[0]) and
	// rerun the identity leg: every query must succeed via the replica,
	// byte-identical, and the router must count failovers.
	members[0].close()
	r.Failover = identity()
	r.Failover.Failovers = router.Stats().Fanout.Failovers

	r.Pass = r.Identity.Mismatches == 0 && r.Identity.Errors == 0 &&
		r.Failover.Mismatches == 0 && r.Failover.Errors == 0 &&
		r.Failover.Failovers > 0 && r.Errors == 0
	return r, nil
}

func sameBits(got []server.NeighborJSON, want []blobindex.Neighbor) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i].RID != want[i].RID ||
			math.Float64bits(got[i].Dist) != math.Float64bits(want[i].Dist) ||
			math.Float64bits(got[i].Dist2) != math.Float64bits(want[i].Dist2) {
			return false
		}
	}
	return true
}

// JSON renders the result as a committable artifact (blobbench -clusterout).
func (r *ClusterResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Render formats the result for the terminal.
func (r *ClusterResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sharded cluster: %d blobs over %d %s-partitioned %s shards (+%d replica)\n",
		r.Blobs, r.Shards, r.Partition, r.Method, r.Replicas)
	fmt.Fprintf(&b, "  %-22s %d/%d verified, %d mismatches, %d errors\n",
		"merge identity", r.Identity.Verified, r.Identity.Queries, r.Identity.Mismatches, r.Identity.Errors)
	fmt.Fprintf(&b, "  %-22s %.0f req/s over %d clients (%d reqs, %d errors, %d shard calls)\n",
		"fan-out throughput", r.QPS, r.Clients, r.Requests, r.Errors, r.ShardRequests)
	fmt.Fprintf(&b, "  %-22s p50 %.0fµs  p95 %.0fµs  p99 %.0fµs\n",
		"router latency", r.P50Us, r.P95Us, r.P99Us)
	fmt.Fprintf(&b, "  %-22s %d/%d verified via replica, %d mismatches, %d errors, %d failovers\n",
		"failover probe", r.Failover.Verified, r.Failover.Queries, r.Failover.Mismatches,
		r.Failover.Errors, r.Failover.Failovers)
	fmt.Fprintf(&b, "  %-22s %v\n", "pass", r.Pass)
	return strings.TrimRight(b.String(), "\n")
}

package nn

import (
	"context"

	"blobindex/internal/geom"
	"blobindex/internal/gist"
)

// Iterator yields the neighbors of a query point one at a time in
// increasing distance order — the incremental form of the Hjaltason–Samet
// best-first search. It reads tree pages lazily: the frontier holds child
// page ids, and a page is pinned against the tree's node store only for the
// moment it is expanded, so asking for the first few neighbors of a
// selective access method touches only a handful of pages — which is what
// makes the "give me images until the user is satisfied" interaction of the
// Blobworld front end cheap, and what lets the same code serve demand-paged
// on-disk indexes within a bounded buffer pool.
//
// A public Iterator takes the tree's read lock for the duration of each
// Next/NextWithin call, so concurrent iterators and searches coexist with
// a single writer. The frontier it accumulates between calls is not
// writer-proof, however: a mutation between calls can reorganize or free
// pages the queue still references, so an Iterator must not be used across
// modifications of the tree. An Iterator itself is single-goroutine state.
type Iterator struct {
	tree     *gist.Tree
	store    gist.NodeStore
	query    geom.Vector
	trace    *gist.Trace
	ctx      context.Context // nil: never canceled
	err      error           // sticky ctx or store error once failed
	selfLock bool            // public iterators lock per call; search funcs hold the lock themselves
	queue    pq
	seq      int
	dists    []float64       // whole-leaf block-scoring scratch
	pf       gist.Prefetcher // non-nil when the store can warm pages ahead
}

// prefetchWidth is how many frontier entries past the immediate top get a
// page-warming hint after each expansion. The top itself is excluded — it
// is about to be pinned synchronously, so a concurrent prefetch would only
// duplicate the read.
const prefetchWidth = 3

// NewIterator starts an incremental nearest-neighbor scan from q. If trace
// is non-nil every page read is recorded as the iteration proceeds.
func NewIterator(t *gist.Tree, q geom.Vector, trace *gist.Trace) *Iterator {
	return NewIteratorCtx(nil, t, q, trace)
}

// NewIteratorCtx is NewIterator with cancellation: once ctx is done, Next
// and NextWithin return ok == false and Err reports the cause. A nil ctx
// means no cancellation.
func NewIteratorCtx(ctx context.Context, t *gist.Tree, q geom.Vector, trace *gist.Trace) *Iterator {
	it := &Iterator{tree: t, store: t.Store(), query: q, trace: trace, ctx: ctx, selfLock: true}
	it.pf, _ = it.store.(gist.Prefetcher)
	if t.Len() > 0 {
		t.RLock()
		it.push(item{dist2: 0, child: t.RootID(), isNode: true})
		t.RUnlock()
	}
	return it
}

// Err returns the context or page-store error that stopped the iteration,
// if any.
func (it *Iterator) Err() error { return it.err }

func (it *Iterator) push(x item) {
	x.seq = it.seq
	it.seq++
	it.queue.pushItem(x)
}

// canceled records and reports a pending context cancellation.
func (it *Iterator) canceled() bool {
	if it.err != nil {
		return true
	}
	if it.ctx == nil {
		return false
	}
	if err := it.ctx.Err(); err != nil {
		it.err = err
		return true
	}
	return false
}

// prefetchFrontier hints the store at the node pages nearest the top of the
// frontier, so a demand-paged descent overlaps the next reads with the
// current expansion's compute.
func (it *Iterator) prefetchFrontier() {
	q := it.queue
	for i := 1; i < len(q) && i <= prefetchWidth; i++ {
		if q[i].isNode {
			it.pf.Prefetch(q[i].child)
		}
	}
}

// expand pins the page behind top, records the access, and pushes the
// node's contents onto the frontier: result items for leaf entries, child
// page ids for internal entries. Leaf entries are scored with one
// whole-block kernel call rather than per key. The pin is released before
// returning.
func (it *Iterator) expand(top item) bool {
	n, err := it.store.Pin(top.child)
	if err != nil {
		it.err = err
		return false
	}
	it.trace.Record(n)
	if n.IsLeaf() {
		flat, d := n.FlatKeys(), n.Dim()
		it.dists = geom.Dist2FlatBlock(it.query, flat[:n.NumEntries()*d], d, it.dists[:0])
		for i, dist := range it.dists {
			it.push(item{
				dist2: dist,
				res:   Result{RID: n.LeafRID(i), Key: n.LeafKey(i), Dist2: dist, Leaf: n.ID()},
			})
		}
	} else {
		ext := it.tree.Ext()
		for i := 0; i < n.NumEntries(); i++ {
			d := ext.MinDist2(n.ChildPred(i), it.query)
			it.push(item{
				dist2:  d,
				child:  n.ChildID(i),
				isNode: true,
			})
		}
	}
	it.store.Unpin(n)
	if it.pf != nil {
		it.prefetchFrontier()
	}
	return true
}

// Next returns the next-nearest neighbor, or ok == false when the tree is
// exhausted, the iterator's context is canceled, or a page read failed
// (see Err).
func (it *Iterator) Next() (Result, bool) {
	if it.selfLock {
		it.tree.RLock()
		defer it.tree.RUnlock()
	}
	return it.next()
}

func (it *Iterator) next() (Result, bool) {
	for len(it.queue) > 0 {
		if it.canceled() {
			return Result{}, false
		}
		top := it.queue.popItem()
		if !top.isNode {
			return top.res, true
		}
		if !it.expand(top) {
			return Result{}, false
		}
	}
	return Result{}, false
}

// NextWithin returns the next neighbor only if it lies within squared
// distance radius2; otherwise it reports ok == false without consuming it
// (subsequent calls with a larger radius continue the scan).
func (it *Iterator) NextWithin(radius2 float64) (Result, bool) {
	if it.selfLock {
		it.tree.RLock()
		defer it.tree.RUnlock()
	}
	return it.nextWithin(radius2)
}

func (it *Iterator) nextWithin(radius2 float64) (Result, bool) {
	for len(it.queue) > 0 {
		if it.canceled() {
			return Result{}, false
		}
		top := it.queue[0]
		if top.dist2 > radius2 {
			return Result{}, false
		}
		it.queue.popItem()
		if !top.isNode {
			return top.res, true
		}
		if !it.expand(top) {
			return Result{}, false
		}
	}
	return Result{}, false
}

package nn

import (
	"container/heap"

	"blobindex/internal/geom"
	"blobindex/internal/gist"
)

// Iterator yields the neighbors of a query point one at a time in
// increasing distance order — the incremental form of the Hjaltason–Samet
// best-first search. It reads tree pages lazily: asking for the first few
// neighbors of a selective access method touches only a handful of pages,
// which is what makes the "give me images until the user is satisfied"
// interaction of the Blobworld front end cheap.
//
// An Iterator must not outlive modifications to the tree.
type Iterator struct {
	tree  *gist.Tree
	query geom.Vector
	trace *gist.Trace
	queue pq
	seq   int
}

// NewIterator starts an incremental nearest-neighbor scan from q. If trace
// is non-nil every page read is recorded as the iteration proceeds.
func NewIterator(t *gist.Tree, q geom.Vector, trace *gist.Trace) *Iterator {
	it := &Iterator{tree: t, query: q, trace: trace}
	if t.Len() > 0 {
		it.push(item{dist2: 0, node: t.Root()})
	}
	return it
}

func (it *Iterator) push(x item) {
	x.seq = it.seq
	it.seq++
	heap.Push(&it.queue, x)
}

// Next returns the next-nearest neighbor, or ok == false when the tree is
// exhausted.
func (it *Iterator) Next() (Result, bool) {
	ext := it.tree.Ext()
	for it.queue.Len() > 0 {
		top := heap.Pop(&it.queue).(item)
		if top.node == nil {
			return top.res, true
		}
		n := top.node
		it.trace.Record(n)
		if n.IsLeaf() {
			for i := 0; i < n.NumEntries(); i++ {
				key := n.LeafKey(i)
				d := it.query.Dist2(key)
				it.push(item{
					dist2: d,
					res:   Result{RID: n.LeafRID(i), Key: key, Dist2: d, Leaf: n.ID()},
				})
			}
			continue
		}
		for i := 0; i < n.NumEntries(); i++ {
			it.push(item{
				dist2: ext.MinDist2(n.ChildPred(i), it.query),
				node:  n.Child(i),
			})
		}
	}
	return Result{}, false
}

// NextWithin returns the next neighbor only if it lies within squared
// distance radius2; otherwise it reports ok == false without consuming it
// (subsequent calls with a larger radius continue the scan).
func (it *Iterator) NextWithin(radius2 float64) (Result, bool) {
	ext := it.tree.Ext()
	for it.queue.Len() > 0 {
		top := it.queue[0]
		if top.dist2 > radius2 {
			return Result{}, false
		}
		heap.Pop(&it.queue)
		if top.node == nil {
			return top.res, true
		}
		n := top.node
		it.trace.Record(n)
		if n.IsLeaf() {
			for i := 0; i < n.NumEntries(); i++ {
				key := n.LeafKey(i)
				d := it.query.Dist2(key)
				it.push(item{
					dist2: d,
					res:   Result{RID: n.LeafRID(i), Key: key, Dist2: d, Leaf: n.ID()},
				})
			}
			continue
		}
		for i := 0; i < n.NumEntries(); i++ {
			it.push(item{
				dist2: ext.MinDist2(n.ChildPred(i), it.query),
				node:  n.Child(i),
			})
		}
	}
	return Result{}, false
}

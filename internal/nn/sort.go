package nn

import "math"

// Hand-rolled introsorts for the two hot orderings of the query path.
// slices.SortFunc pays an indirect call per comparison — measured at roughly
// a third of a 200-NN query when ordering the final results — while these
// specialize the comparison inline. The shape is classic introsort:
// median-of-three quicksort, insertion sort below a small cutoff, and a
// heapsort fallback past 2·log₂(n) recursion depth so pathological inputs
// stay O(n log n). Every phase is deterministic, and both orderings are
// strict total orders (res indices and RIDs are unique), so the output
// order is reproducible and independent of the partitioning path.

const sortCutoff = 12

func pairLess(a, b knnPair) bool {
	if a.d != b.d {
		return a.d < b.d
	}
	return a.ix < b.ix
}

// bucketSortPairs orders ps ascending by (d, ix) using tmp (same length) as
// scatter space. Distances are spread over 256 buckets by linear scale in
// one counting pass; after the scatter the slice holds at most a handful of
// inversions per bucket, and the final insertion pass enforces the exact
// order. On continuously distributed distances this is O(n) with tiny
// constants — comparison sorts of float keys pay a mispredicted branch per
// compare — while a degenerate distribution (all distances equal) decays to
// the insertion sort's quadratic but stays correct and deterministic.
func bucketSortPairs(ps, tmp []knnPair) {
	if len(ps) <= 2*sortCutoff {
		insertionSortPairs(ps)
		return
	}
	maxd := 0.0
	for _, p := range ps {
		if p.d > maxd {
			maxd = p.d
		}
	}
	if !(maxd > 0) || math.IsInf(maxd, 1) {
		sortPairs(ps)
		return
	}
	scale := 255 / maxd
	var cnt [257]int32
	for _, p := range ps {
		b := int(p.d * scale)
		if b < 0 {
			b = 0
		} else if b > 255 {
			b = 255
		}
		cnt[b+1]++
	}
	for b := 1; b < len(cnt); b++ {
		cnt[b] += cnt[b-1]
	}
	for _, p := range ps {
		b := int(p.d * scale)
		if b < 0 {
			b = 0
		} else if b > 255 {
			b = 255
		}
		tmp[cnt[b]] = p
		cnt[b]++
	}
	copy(ps, tmp)
	insertionSortPairs(ps)
}

func resultLess(a, b Result) bool {
	if a.Dist2 != b.Dist2 {
		return a.Dist2 < b.Dist2
	}
	return a.RID < b.RID
}

// depthBudget is 2·⌊log₂(n)⌋ quicksort levels before falling back.
func depthBudget(n int) int {
	d := 0
	for n > 0 {
		d += 2
		n >>= 1
	}
	return d
}

func sortPairs(ps []knnPair) { introPairs(ps, depthBudget(len(ps))) }

func introPairs(ps []knnPair, depth int) {
	for len(ps) > sortCutoff {
		if depth == 0 {
			heapSortPairs(ps)
			return
		}
		depth--
		mid := partitionPairs(ps)
		// Recurse into the smaller side, loop on the larger, bounding the
		// stack at O(log n).
		if mid < len(ps)-mid-1 {
			introPairs(ps[:mid], depth)
			ps = ps[mid+1:]
		} else {
			introPairs(ps[mid+1:], depth)
			ps = ps[:mid]
		}
	}
	insertionSortPairs(ps)
}

// partitionPairs moves the median of the first, middle and last element to
// the front as pivot, Hoare-partitions the rest, and returns the pivot's
// final index.
func partitionPairs(ps []knnPair) int {
	m, hi := len(ps)/2, len(ps)-1
	if pairLess(ps[m], ps[0]) {
		ps[m], ps[0] = ps[0], ps[m]
	}
	if pairLess(ps[hi], ps[m]) {
		ps[hi], ps[m] = ps[m], ps[hi]
		if pairLess(ps[m], ps[0]) {
			ps[m], ps[0] = ps[0], ps[m]
		}
	}
	ps[0], ps[m] = ps[m], ps[0]
	pivot := ps[0]
	i, j := 1, hi
	for {
		for i <= j && pairLess(ps[i], pivot) {
			i++
		}
		for i <= j && pairLess(pivot, ps[j]) {
			j--
		}
		if i > j {
			break
		}
		ps[i], ps[j] = ps[j], ps[i]
		i++
		j--
	}
	ps[0], ps[j] = ps[j], ps[0]
	return j
}

func insertionSortPairs(ps []knnPair) {
	for i := 1; i < len(ps); i++ {
		x := ps[i]
		j := i - 1
		for j >= 0 && pairLess(x, ps[j]) {
			ps[j+1] = ps[j]
			j--
		}
		ps[j+1] = x
	}
}

func heapSortPairs(ps []knnPair) {
	n := len(ps)
	for i := n/2 - 1; i >= 0; i-- {
		siftDownPairs(ps, i, n)
	}
	for end := n - 1; end > 0; end-- {
		ps[0], ps[end] = ps[end], ps[0]
		siftDownPairs(ps, 0, end)
	}
}

func siftDownPairs(ps []knnPair, i, n int) {
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		j := l
		if r := l + 1; r < n && pairLess(ps[l], ps[r]) {
			j = r
		}
		if !pairLess(ps[i], ps[j]) {
			return
		}
		ps[i], ps[j] = ps[j], ps[i]
		i = j
	}
}

func sortResultsFast(rs []Result) { introResults(rs, depthBudget(len(rs))) }

func introResults(rs []Result, depth int) {
	for len(rs) > sortCutoff {
		if depth == 0 {
			heapSortResults(rs)
			return
		}
		depth--
		mid := partitionResults(rs)
		if mid < len(rs)-mid-1 {
			introResults(rs[:mid], depth)
			rs = rs[mid+1:]
		} else {
			introResults(rs[mid+1:], depth)
			rs = rs[:mid]
		}
	}
	insertionSortResults(rs)
}

func partitionResults(rs []Result) int {
	m, hi := len(rs)/2, len(rs)-1
	if resultLess(rs[m], rs[0]) {
		rs[m], rs[0] = rs[0], rs[m]
	}
	if resultLess(rs[hi], rs[m]) {
		rs[hi], rs[m] = rs[m], rs[hi]
		if resultLess(rs[m], rs[0]) {
			rs[m], rs[0] = rs[0], rs[m]
		}
	}
	rs[0], rs[m] = rs[m], rs[0]
	pivot := rs[0]
	i, j := 1, hi
	for {
		for i <= j && resultLess(rs[i], pivot) {
			i++
		}
		for i <= j && resultLess(pivot, rs[j]) {
			j--
		}
		if i > j {
			break
		}
		rs[i], rs[j] = rs[j], rs[i]
		i++
		j--
	}
	rs[0], rs[j] = rs[j], rs[0]
	return j
}

func insertionSortResults(rs []Result) {
	for i := 1; i < len(rs); i++ {
		x := rs[i]
		j := i - 1
		for j >= 0 && resultLess(x, rs[j]) {
			rs[j+1] = rs[j]
			j--
		}
		rs[j+1] = x
	}
}

func heapSortResults(rs []Result) {
	n := len(rs)
	for i := n/2 - 1; i >= 0; i-- {
		siftDownResults(rs, i, n)
	}
	for end := n - 1; end > 0; end-- {
		rs[0], rs[end] = rs[end], rs[0]
		siftDownResults(rs, 0, end)
	}
}

func siftDownResults(rs []Result, i, n int) {
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		j := l
		if r := l + 1; r < n && resultLess(rs[l], rs[r]) {
			j = r
		}
		if !resultLess(rs[i], rs[j]) {
			return
		}
		rs[i], rs[j] = rs[j], rs[i]
		i = j
	}
}

package nn

import (
	"math"
	"math/rand"
	"testing"

	"blobindex/internal/am"
	"blobindex/internal/geom"
	"blobindex/internal/gist"
)

func TestSearchDFSExactAllAMs(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	pts := randomPoints(rng, 3000, 3)
	for _, kind := range am.Kinds() {
		tree := buildTree(t, kind, pts, 3)
		for trial := 0; trial < 10; trial++ {
			q := geom.Vector{rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 100}
			k := 1 + rng.Intn(40)
			want := Search(tree, q, k, nil)
			got := SearchDFS(tree, q, k, nil)
			if len(got) != len(want) {
				t.Fatalf("%s: %d results, want %d", kind, len(got), len(want))
			}
			for i := range got {
				if got[i].Dist2 != want[i].Dist2 {
					t.Fatalf("%s: result %d dist %v, want %v", kind, i, got[i].Dist2, want[i].Dist2)
				}
			}
		}
	}
}

func TestSearchDFSEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	pts := randomPoints(rng, 50, 2)
	tree := buildTree(t, am.KindRTree, pts, 2)
	if got := SearchDFS(tree, geom.Vector{1, 1}, 0, nil); got != nil {
		t.Error("k=0 should return nil")
	}
	if got := SearchDFS(tree, geom.Vector{1, 1}, 500, nil); len(got) != 50 {
		t.Errorf("oversized k returned %d", len(got))
	}
	empty, err := gist.New(tree.Ext(), gist.Config{Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := SearchDFS(empty, geom.Vector{1, 1}, 3, nil); got != nil {
		t.Error("empty tree should return nil")
	}
}

// Best-first search is I/O-optimal for the given bounds: DFS must never
// read fewer leaves.
func TestSearchDFSNeverBeatsBestFirst(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	pts := randomPoints(rng, 4000, 3)
	tree := buildTree(t, am.KindRTree, pts, 3)
	var bfTotal, dfsTotal int
	for trial := 0; trial < 25; trial++ {
		q := geom.Vector{rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 100}
		var bf, dfs gist.Trace
		Search(tree, q, 10, &bf)
		SearchDFS(tree, q, 10, &dfs)
		bfTotal += len(bf.Accesses)
		dfsTotal += len(dfs.Accesses)
	}
	if dfsTotal < bfTotal {
		t.Errorf("DFS read %d pages, best-first %d — optimality violated", dfsTotal, bfTotal)
	}
}

func TestMinMaxDist2(t *testing.T) {
	r := geom.Rect{Lo: geom.Vector{0, 0}, Hi: geom.Vector{4, 2}}
	// Query left of the rectangle, centered vertically.
	p := geom.Vector{-2, 1}
	// The guaranteed point: nearest face in x (x=0) with far corner in y
	// (either, distance 1): (0-(-2))² + 1² = 5; or nearest face in y
	// (y=0 or 2 at distance 1) with far corner in x (x=4): 36+1 = 37.
	if got := r.MinMaxDist2(p); math.Abs(got-5) > 1e-12 {
		t.Errorf("MinMaxDist2 = %v, want 5", got)
	}
	// MINMAXDIST is sandwiched between MINDIST and MAXDIST.
	rng := rand.New(rand.NewSource(93))
	for trial := 0; trial < 200; trial++ {
		lo := geom.Vector{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		hi := lo.Add(geom.Vector{rng.Float64(), rng.Float64(), rng.Float64()})
		rect := geom.Rect{Lo: lo, Hi: hi}
		q := geom.Vector{rng.NormFloat64() * 3, rng.NormFloat64() * 3, rng.NormFloat64() * 3}
		mm := rect.MinMaxDist2(q)
		if mm < rect.MinDist2(q)-1e-12 || mm > rect.MaxDist2(q)+1e-12 {
			t.Fatalf("MINMAXDIST %v outside [MINDIST %v, MAXDIST %v]",
				mm, rect.MinDist2(q), rect.MaxDist2(q))
		}
	}
}

// The MINMAXDIST guarantee: for any point set, the nearest point to q in
// the set lies within MINMAXDIST of q's distance to the set's MBR.
func TestMinMaxDistGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	for trial := 0; trial < 100; trial++ {
		n := 3 + rng.Intn(30)
		pts := make([]geom.Vector, n)
		for i := range pts {
			pts[i] = geom.Vector{rng.Float64() * 10, rng.Float64() * 10}
		}
		r := geom.BoundingRect(pts)
		q := geom.Vector{rng.Float64()*30 - 10, rng.Float64()*30 - 10}
		mm := r.MinMaxDist2(q)
		nearest := math.Inf(1)
		for _, p := range pts {
			if d := q.Dist2(p); d < nearest {
				nearest = d
			}
		}
		if nearest > mm+1e-9 {
			t.Fatalf("nearest point at %v exceeds MINMAXDIST %v", nearest, mm)
		}
	}
}

package nn

import (
	"math"
	"slices"

	"blobindex/internal/geom"
	"blobindex/internal/gist"
	"blobindex/internal/page"
)

// SearchDFS is the branch-and-bound depth-first k-NN algorithm of
// Roussopoulos, Kelley and Vincent (SIGMOD 1995) — the standard tree NN
// search of the paper's era, included as a historical comparison point to
// the best-first search. At each internal node the children are visited in
// MINDIST order; a branch is pruned when its MINDIST exceeds the current
// k-th candidate distance, and for rectangle predicates (which carry the
// MBR face property) the MINMAXDIST bound seeds the candidate distance
// before any leaf has been read.
//
// The results are exact and identical to Search's; the I/O cost is at
// least the best-first search's (best-first is optimal for the given
// bounds) but the memory footprint is a single path rather than a frontier
// queue.
func SearchDFS(t *gist.Tree, q geom.Vector, k int, trace *gist.Trace) []Result {
	if k <= 0 || t.Len() == 0 {
		return nil
	}
	ext := t.Ext()
	t.RLock()
	defer t.RUnlock()
	store := t.Store()
	sc := getScratch()
	defer sc.release()
	// best is a max-heap of the k nearest candidates so far.
	best := &resultHeap{}

	kth := func() float64 {
		if len(*best) < k {
			return math.Inf(1)
		}
		return (*best)[0].Dist2
	}

	// visit pins one page per recursion level — the single-path memory
	// footprint the algorithm is known for. A page-read failure aborts the
	// whole search (the DFS path is a historical comparison, not a serving
	// path, so it has no error return).
	var visit func(id page.PageID) error
	visit = func(id page.PageID) error {
		n, err := store.Pin(id)
		if err != nil {
			return err
		}
		defer store.Unpin(n)
		trace.Record(n)
		if n.IsLeaf() {
			flat, dim := n.FlatKeys(), n.Dim()
			sc.dists = geom.Dist2FlatBlock(q, flat[:n.NumEntries()*dim], dim, sc.dists[:0])
			for i, d := range sc.dists {
				if len(*best) < k {
					best.push(Result{RID: n.LeafRID(i), Key: n.LeafKey(i), Dist2: d, Leaf: n.ID()})
				} else if d < (*best)[0].Dist2 {
					(*best)[0] = Result{RID: n.LeafRID(i), Key: n.LeafKey(i), Dist2: d, Leaf: n.ID()}
					best.fixTop()
				}
			}
			return nil
		}
		type branch struct {
			idx     int
			minDist float64
		}
		branches := make([]branch, 0, n.NumEntries())
		bound := kth()
		for i := 0; i < n.NumEntries(); i++ {
			pred := n.ChildPred(i)
			md := ext.MinDist2(pred, q)
			// MINMAXDIST pruning for rectangle predicates: some data point
			// is guaranteed within that distance, so it can only lower the
			// kth-candidate bound (valid when k results fit in any single
			// subtree, i.e. as a bound on the 1st neighbor; apply it only
			// for k == 1, the classical formulation).
			if k == 1 {
				if r, ok := pred.(geom.Rect); ok {
					if mm := r.MinMaxDist2(q); mm < bound {
						bound = mm
					}
				}
			}
			branches = append(branches, branch{idx: i, minDist: md})
		}
		// MINDIST ascending, entry order on ties: a total order, so the
		// (unstable) sort is deterministic.
		slices.SortFunc(branches, func(a, b branch) int {
			if a.minDist != b.minDist {
				if a.minDist < b.minDist {
					return -1
				}
				return 1
			}
			return a.idx - b.idx
		})
		for _, b := range branches {
			// Re-read the bound: deeper visits tighten it.
			cur := kth()
			if k == 1 && bound < cur {
				cur = bound
			}
			if b.minDist > cur {
				break // MINDIST-sorted: all remaining branches prune too
			}
			if err := visit(n.ChildID(b.idx)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := visit(t.RootID()); err != nil {
		return nil
	}

	out := make([]Result, len(*best))
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = best.pop()
	}
	return out
}

// resultHeap is a max-heap of results by distance (farthest on top),
// hand-rolled with the standard sift operations to avoid the interface
// boxing of container/heap.
type resultHeap []Result

func (h *resultHeap) push(r Result) {
	*h = append(*h, r)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent].Dist2 >= s[i].Dist2 {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *resultHeap) pop() Result {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	down(s[:n], 0)
	r := s[n]
	*h = s[:n]
	return r
}

// fixTop restores the heap property after the root was overwritten.
func (h *resultHeap) fixTop() { down(*h, 0) }

func down(s []Result, i int) {
	n := len(s)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		big := l
		if r := l + 1; r < n && s[r].Dist2 > s[l].Dist2 {
			big = r
		}
		if s[big].Dist2 <= s[i].Dist2 {
			return
		}
		s[i], s[big] = s[big], s[i]
		i = big
	}
}

package nn

import (
	"container/heap"
	"math"
	"sort"

	"blobindex/internal/geom"
	"blobindex/internal/gist"
)

// SearchDFS is the branch-and-bound depth-first k-NN algorithm of
// Roussopoulos, Kelley and Vincent (SIGMOD 1995) — the standard tree NN
// search of the paper's era, included as a historical comparison point to
// the best-first search. At each internal node the children are visited in
// MINDIST order; a branch is pruned when its MINDIST exceeds the current
// k-th candidate distance, and for rectangle predicates (which carry the
// MBR face property) the MINMAXDIST bound seeds the candidate distance
// before any leaf has been read.
//
// The results are exact and identical to Search's; the I/O cost is at
// least the best-first search's (best-first is optimal for the given
// bounds) but the memory footprint is a single path rather than a frontier
// queue.
func SearchDFS(t *gist.Tree, q geom.Vector, k int, trace *gist.Trace) []Result {
	if k <= 0 || t.Len() == 0 {
		return nil
	}
	ext := t.Ext()
	t.RLock()
	defer t.RUnlock()
	// best is a max-heap of the k nearest candidates so far.
	best := &resultHeap{}

	kth := func() float64 {
		if best.Len() < k {
			return math.Inf(1)
		}
		return (*best)[0].Dist2
	}

	var visit func(n *gist.Node)
	visit = func(n *gist.Node) {
		trace.Record(n)
		if n.IsLeaf() {
			for i := 0; i < n.NumEntries(); i++ {
				key := n.LeafKey(i)
				d := q.Dist2(key)
				if best.Len() < k {
					heap.Push(best, Result{RID: n.LeafRID(i), Key: key, Dist2: d, Leaf: n.ID()})
				} else if d < (*best)[0].Dist2 {
					(*best)[0] = Result{RID: n.LeafRID(i), Key: key, Dist2: d, Leaf: n.ID()}
					heap.Fix(best, 0)
				}
			}
			return
		}
		type branch struct {
			idx     int
			minDist float64
		}
		branches := make([]branch, 0, n.NumEntries())
		bound := kth()
		for i := 0; i < n.NumEntries(); i++ {
			pred := n.ChildPred(i)
			md := ext.MinDist2(pred, q)
			// MINMAXDIST pruning for rectangle predicates: some data point
			// is guaranteed within that distance, so it can only lower the
			// kth-candidate bound (valid when k results fit in any single
			// subtree, i.e. as a bound on the 1st neighbor; apply it only
			// for k == 1, the classical formulation).
			if k == 1 {
				if r, ok := pred.(geom.Rect); ok {
					if mm := r.MinMaxDist2(q); mm < bound {
						bound = mm
					}
				}
			}
			branches = append(branches, branch{idx: i, minDist: md})
		}
		sort.Slice(branches, func(a, b int) bool { return branches[a].minDist < branches[b].minDist })
		for _, b := range branches {
			// Re-read the bound: deeper visits tighten it.
			cur := kth()
			if k == 1 && bound < cur {
				cur = bound
			}
			if b.minDist > cur {
				break // MINDIST-sorted: all remaining branches prune too
			}
			visit(n.Child(b.idx))
		}
	}
	visit(t.Root())

	out := make([]Result, best.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(best).(Result)
	}
	return out
}

// resultHeap is a max-heap of results by distance (farthest on top).
type resultHeap []Result

func (h resultHeap) Len() int           { return len(h) }
func (h resultHeap) Less(i, j int) bool { return h[i].Dist2 > h[j].Dist2 }
func (h resultHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x any)        { *h = append(*h, x.(Result)) }
func (h *resultHeap) Pop() any          { old := *h; n := len(old); r := old[n-1]; *h = old[:n-1]; return r }

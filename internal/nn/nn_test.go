package nn

import (
	"math/rand"
	"testing"
	"testing/quick"

	"blobindex/internal/am"
	"blobindex/internal/geom"
	"blobindex/internal/gist"
	"blobindex/internal/str"
)

func randomPoints(rng *rand.Rand, n, dim int) []gist.Point {
	pts := make([]gist.Point, n)
	for i := range pts {
		v := make(geom.Vector, dim)
		for d := range v {
			v[d] = rng.Float64() * 100
		}
		pts[i] = gist.Point{Key: v, RID: int64(i)}
	}
	return pts
}

func buildTree(t testing.TB, kind am.Kind, pts []gist.Point, dim int) *gist.Tree {
	t.Helper()
	ext, err := am.New(kind, am.Options{AMAPSamples: 64, AMAPSeed: 3, XJBX: 4})
	if err != nil {
		t.Fatal(err)
	}
	ordered := make([]gist.Point, len(pts))
	copy(ordered, pts)
	cfg := gist.Config{Dim: dim, PageSize: 2048}
	tree, err := gist.New(ext, cfg)
	if err != nil {
		t.Fatal(err)
	}
	str.Order(ordered, tree.LeafCapacity())
	tree, err = gist.BulkLoad(ext, cfg, ordered, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// Exactness: for every access method, index k-NN must return exactly the
// brute-force k-NN (same RIDs in the same distance order).
func TestSearchExactAllAMs(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	pts := randomPoints(rng, 3000, 3)
	for _, kind := range am.Kinds() {
		t.Run(string(kind), func(t *testing.T) {
			tree := buildTree(t, kind, pts, 3)
			for trial := 0; trial < 15; trial++ {
				q := geom.Vector{rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 100}
				k := 1 + rng.Intn(50)
				got := Search(tree, q, k, nil)
				want := BruteForce(pts, q, k)
				if len(got) != len(want) {
					t.Fatalf("got %d results, want %d", len(got), len(want))
				}
				for i := range got {
					// Distances must agree; ties may order RIDs differently.
					if got[i].Dist2 > want[i].Dist2+1e-9 || got[i].Dist2 < want[i].Dist2-1e-9 {
						t.Fatalf("result %d: dist2 %.9f, want %.9f", i, got[i].Dist2, want[i].Dist2)
					}
				}
			}
		})
	}
}

func TestSearchReturnsAllWhenKExceedsN(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pts := randomPoints(rng, 57, 2)
	tree := buildTree(t, am.KindRTree, pts, 2)
	got := Search(tree, geom.Vector{0, 0}, 1000, nil)
	if len(got) != 57 {
		t.Errorf("got %d results, want all 57", len(got))
	}
	// Results are sorted by distance.
	for i := 1; i < len(got); i++ {
		if got[i].Dist2 < got[i-1].Dist2 {
			t.Fatal("results not sorted by distance")
		}
	}
}

func TestSearchEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	pts := randomPoints(rng, 100, 2)
	tree := buildTree(t, am.KindRTree, pts, 2)
	if got := Search(tree, geom.Vector{1, 1}, 0, nil); got != nil {
		t.Error("k=0 should return nil")
	}
	if got := Search(tree, geom.Vector{1, 1}, -5, nil); got != nil {
		t.Error("negative k should return nil")
	}
	empty, err := gist.New(tree.Ext(), gist.Config{Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := Search(empty, geom.Vector{1, 1}, 3, nil); got != nil {
		t.Error("empty tree should return nil")
	}
}

func TestSearchTraceAndLeafAttribution(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	pts := randomPoints(rng, 2000, 2)
	tree := buildTree(t, am.KindRTree, pts, 2)
	var trace gist.Trace
	res := Search(tree, geom.Vector{50, 50}, 20, &trace)
	if len(res) != 20 {
		t.Fatalf("got %d results", len(res))
	}
	if len(trace.Accesses) == 0 || trace.Accesses[0].Page != tree.Root().ID() {
		t.Error("trace must start at the root")
	}
	// Every result's Leaf must appear in the trace as a leaf access.
	leafSet := make(map[int64]bool)
	for _, p := range trace.LeafPages() {
		leafSet[int64(p)] = true
	}
	for _, r := range res {
		if !leafSet[int64(r.Leaf)] {
			t.Errorf("result RID %d attributed to leaf %d not in trace", r.RID, r.Leaf)
		}
	}
}

// Best-first search should touch far fewer leaves than exist in the tree.
func TestSearchIsSelective(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	pts := randomPoints(rng, 5000, 3)
	tree := buildTree(t, am.KindRTree, pts, 3)
	var trace gist.Trace
	Search(tree, geom.Vector{50, 50, 50}, 10, &trace)
	leaves := tree.NumLeaves()
	if trace.LeafAccesses() > leaves/4 {
		t.Errorf("10-NN touched %d of %d leaves", trace.LeafAccesses(), leaves)
	}
}

func TestBruteForceEdgeCases(t *testing.T) {
	if got := BruteForce(nil, geom.Vector{1}, 3); len(got) != 0 {
		t.Error("empty input should return empty")
	}
	pts := []gist.Point{{Key: geom.Vector{1}, RID: 5}}
	if got := BruteForce(pts, geom.Vector{0}, 0); got != nil {
		t.Error("k=0 should return nil")
	}
	got := BruteForce(pts, geom.Vector{0}, 10)
	if len(got) != 1 || got[0].RID != 5 {
		t.Errorf("got %+v", got)
	}
}

// Property: BruteForce returns a sorted prefix of the full distance order.
func TestBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := randomPoints(rng, 1+rng.Intn(200), 2)
		q := geom.Vector{rng.Float64() * 100, rng.Float64() * 100}
		k := 1 + rng.Intn(20)
		got := BruteForce(pts, q, k)
		wantLen := k
		if len(pts) < k {
			wantLen = len(pts)
		}
		if len(got) != wantLen {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].Dist2 < got[i-1].Dist2 {
				return false
			}
		}
		// No unreturned point may be closer than the worst returned one.
		if len(got) > 0 {
			worst := got[len(got)-1].Dist2
			returned := make(map[int64]bool)
			for _, r := range got {
				returned[r.RID] = true
			}
			for _, p := range pts {
				if !returned[p.RID] && q.Dist2(p.Key) < worst-1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// JB's tighter predicates must not make NN search inexact (admissibility in
// the full pipeline) and should access no more leaves than the R-tree.
func TestJBSelectivityVsRTree(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	pts := randomPoints(rng, 4000, 2)
	rt := buildTree(t, am.KindRTree, pts, 2)
	jb := buildTree(t, am.KindJB, pts, 2)

	var rtLeaves, jbLeaves int
	for trial := 0; trial < 30; trial++ {
		q := geom.Vector{rng.Float64() * 100, rng.Float64() * 100}
		var rtTrace, jbTrace gist.Trace
		rres := Search(rt, q, 20, &rtTrace)
		jres := Search(jb, q, 20, &jbTrace)
		for i := range rres {
			if rres[i].Dist2 != jres[i].Dist2 {
				t.Fatalf("JB and R-tree disagree at %d: %.9f vs %.9f",
					i, rres[i].Dist2, jres[i].Dist2)
			}
		}
		rtLeaves += rtTrace.LeafAccesses()
		jbLeaves += jbTrace.LeafAccesses()
	}
	if jbLeaves > rtLeaves {
		t.Errorf("JB accessed %d leaves, R-tree %d; JB should not be worse", jbLeaves, rtLeaves)
	}
}

package nn

import (
	"container/heap"
	"context"

	"blobindex/internal/geom"
	"blobindex/internal/gist"
)

// SearchApprox implements the Blobworld access-method query of paper §2.3:
// a "quick and dirty" estimate of the k nearest neighbors. The tree is
// descended best-first on the bounding predicates' MinDist2 — but unlike
// the exact search, every visited leaf is harvested wholesale and the
// search stops as soon as k candidates have been gathered; the k nearest of
// the harvest are returned.
//
// The result set is approximate: a leaf holding true neighbors may never be
// visited if other leaves' predicates looked closer. That is the intended
// trade — Blobworld re-ranks the AM's few hundred candidates with the full
// feature vectors, so the AM only has to get the eventual top few dozen
// into its top few hundred. Crucially, the number of leaf I/Os now depends
// directly on predicate quality: an access method whose predicates rank the
// truly-relevant leaves first stops after ~k/leafsize I/Os, which is how
// the paper's JB tree executes 200-NN queries in barely more than two leaf
// reads while the R-tree wanders through excess leaves (§6).
func SearchApprox(t *gist.Tree, q geom.Vector, k int, trace *gist.Trace) []Result {
	res, _ := SearchApproxCtx(nil, t, q, k, trace)
	return res
}

// SearchApproxCtx is SearchApprox with cancellation: once ctx is done the
// harvest stops and ctx's error is returned.
func SearchApproxCtx(ctx context.Context, t *gist.Tree, q geom.Vector, k int, trace *gist.Trace) ([]Result, error) {
	if k <= 0 || t.Len() == 0 {
		return nil, ctxErr(ctx)
	}
	ext := t.Ext()
	t.RLock()
	defer t.RUnlock()
	var queue pq
	seq := 0
	push := func(n *gist.Node, d float64) {
		heap.Push(&queue, item{dist2: d, seq: seq, node: n})
		seq++
	}
	push(t.Root(), 0)

	var harvest []Result
	for queue.Len() > 0 && len(harvest) < k {
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		it := heap.Pop(&queue).(item)
		n := it.node
		trace.Record(n)
		if n.IsLeaf() {
			for i := 0; i < n.NumEntries(); i++ {
				key := n.LeafKey(i)
				harvest = append(harvest, Result{
					RID:   n.LeafRID(i),
					Key:   key,
					Dist2: q.Dist2(key),
					Leaf:  n.ID(),
				})
			}
			continue
		}
		for i := 0; i < n.NumEntries(); i++ {
			push(n.Child(i), ext.MinDist2(n.ChildPred(i), q))
		}
	}
	sortResults(harvest)
	if k < len(harvest) {
		harvest = harvest[:k]
	}
	return harvest, nil
}

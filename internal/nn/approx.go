package nn

import (
	"context"

	"blobindex/internal/geom"
	"blobindex/internal/gist"
)

// SearchApprox implements the Blobworld access-method query of paper §2.3:
// a "quick and dirty" estimate of the k nearest neighbors. The tree is
// descended best-first on the bounding predicates' MinDist2 — but unlike
// the exact search, every visited leaf is harvested wholesale and the
// search stops as soon as k candidates have been gathered; the k nearest of
// the harvest are returned.
//
// The result set is approximate: a leaf holding true neighbors may never be
// visited if other leaves' predicates looked closer. That is the intended
// trade — Blobworld re-ranks the AM's few hundred candidates with the full
// feature vectors, so the AM only has to get the eventual top few dozen
// into its top few hundred. Crucially, the number of leaf I/Os now depends
// directly on predicate quality: an access method whose predicates rank the
// truly-relevant leaves first stops after ~k/leafsize I/Os, which is how
// the paper's JB tree executes 200-NN queries in barely more than two leaf
// reads while the R-tree wanders through excess leaves (§6).
func SearchApprox(t *gist.Tree, q geom.Vector, k int, trace *gist.Trace) []Result {
	res, _ := SearchApproxCtx(nil, t, q, k, trace)
	return res
}

// SearchApproxCtx is SearchApprox with cancellation: once ctx is done the
// harvest stops and ctx's error is returned.
func SearchApproxCtx(ctx context.Context, t *gist.Tree, q geom.Vector, k int, trace *gist.Trace) ([]Result, error) {
	return SearchApproxCtxInto(ctx, t, q, k, trace, nil)
}

// SearchApproxCtxInto is SearchApproxCtx appending the results to dst and
// returning the extended slice. On error dst is returned truncated to its
// original length.
func SearchApproxCtxInto(ctx context.Context, t *gist.Tree, q geom.Vector, k int, trace *gist.Trace, dst []Result) ([]Result, error) {
	base := len(dst)
	if k <= 0 || t.Len() == 0 {
		return dst, ctxErr(ctx)
	}
	ext := t.Ext()
	t.RLock()
	defer t.RUnlock()
	store := t.Store()
	pf, _ := store.(gist.Prefetcher)
	sc := getScratch()
	queue := sc.nqueue
	seq := int32(1)
	queue.push(nodeItem{d: 0, seq: 0, child: t.RootID()})

	for len(queue) > 0 && len(dst)-base < k {
		if err := ctxErr(ctx); err != nil {
			sc.nqueue = queue
			sc.release()
			return dst[:base], err
		}
		it := queue.pop()
		n, err := store.Pin(it.child)
		if err != nil {
			sc.nqueue = queue
			sc.release()
			return dst[:base], err
		}
		trace.Record(n)
		if n.IsLeaf() {
			flat, d := n.FlatKeys(), n.Dim()
			sc.dists = geom.Dist2FlatBlock(q, flat[:n.NumEntries()*d], d, sc.dists[:0])
			for i, dist := range sc.dists {
				dst = append(dst, Result{
					RID:   n.LeafRID(i),
					Key:   n.LeafKey(i),
					Dist2: dist,
					Leaf:  n.ID(),
				})
			}
			store.Unpin(n)
			continue
		}
		for i := 0; i < n.NumEntries(); i++ {
			queue.push(nodeItem{d: ext.MinDist2(n.ChildPred(i), q), seq: seq, child: n.ChildID(i)})
			seq++
		}
		store.Unpin(n)
		if pf != nil {
			// Warm the frontier entries likeliest to be popped next; the
			// harvest pins every popped page, so overlap pays directly.
			for i := 1; i < len(queue) && i <= prefetchWidth; i++ {
				pf.Prefetch(queue[i].child)
			}
		}
	}
	sc.nqueue = queue
	sc.release()
	sortResults(dst[base:])
	if base+k < len(dst) {
		dst = dst[:base+k]
	}
	return dst, nil
}

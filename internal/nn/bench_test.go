package nn

// Allocation-regression benchmarks for the query hot path. Every benchmark
// reports allocs (run with -benchmem), and TestSearchSteadyStateZeroAlloc
// pins the headline property of the flat node layout + scratch pooling: a
// steady-state single-query search allocates nothing once the pool is warm.

import (
	"math/rand"
	"testing"

	"blobindex/internal/am"
	"blobindex/internal/geom"
	"blobindex/internal/gist"
)

const (
	benchPoints  = 20000
	benchDim     = 5
	benchK       = 50
	benchQueries = 64
)

// benchSetup builds a bulk-loaded tree for the access method plus a fixed
// set of query points drawn from the same distribution.
func benchSetup(tb testing.TB, kind am.Kind) (*gist.Tree, []geom.Vector) {
	tb.Helper()
	rng := rand.New(rand.NewSource(7))
	pts := randomPoints(rng, benchPoints, benchDim)
	tree := buildTree(tb, kind, pts, benchDim)
	queries := make([]geom.Vector, benchQueries)
	for i := range queries {
		q := make(geom.Vector, benchDim)
		for d := range q {
			q[d] = rng.Float64() * 100
		}
		queries[i] = q
	}
	return tree, queries
}

// benchRadii returns each query's exact benchK-th-neighbor squared distance,
// so range benchmarks sweep spheres holding exactly benchK points.
func benchRadii(tb testing.TB, tree *gist.Tree, queries []geom.Vector) []float64 {
	tb.Helper()
	radii := make([]float64, len(queries))
	var buf []Result
	for i, q := range queries {
		buf, _ = SearchCtxInto(nil, tree, q, benchK, nil, buf[:0])
		if len(buf) == 0 {
			tb.Fatal("empty radius probe")
		}
		radii[i] = buf[len(buf)-1].Dist2
	}
	return radii
}

// BenchmarkKNN measures best-first k-NN per access method with a reused
// result buffer — the steady-state serving path.
func BenchmarkKNN(b *testing.B) {
	for _, kind := range am.Kinds() {
		b.Run(string(kind), func(b *testing.B) {
			tree, queries := benchSetup(b, kind)
			dst := make([]Result, 0, benchK)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst, _ = SearchCtxInto(nil, tree, queries[i%len(queries)], benchK, nil, dst[:0])
				if len(dst) != benchK {
					b.Fatalf("got %d results", len(dst))
				}
			}
		})
	}
}

// BenchmarkRange measures range search at each query's exact k-th-neighbor
// radius per access method.
func BenchmarkRange(b *testing.B) {
	for _, kind := range am.Kinds() {
		b.Run(string(kind), func(b *testing.B) {
			tree, queries := benchSetup(b, kind)
			radii := benchRadii(b, tree, queries)
			dst := make([]Result, 0, 2*benchK)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				j := i % len(queries)
				dst, _ = RangeCtxInto(nil, tree, queries[j], radii[j], nil, dst[:0])
				if len(dst) < benchK {
					b.Fatalf("got %d results", len(dst))
				}
			}
		})
	}
}

// BenchmarkProbe measures the approximate candidate harvest (§2.3's "quick
// and dirty" plan) per access method.
func BenchmarkProbe(b *testing.B) {
	for _, kind := range am.Kinds() {
		b.Run(string(kind), func(b *testing.B) {
			tree, queries := benchSetup(b, kind)
			dst := make([]Result, 0, benchK)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst, _ = SearchApproxCtxInto(nil, tree, queries[i%len(queries)], benchK, nil, dst[:0])
				if len(dst) == 0 {
					b.Fatal("empty harvest")
				}
			}
		})
	}
}

// TestSearchSteadyStateZeroAlloc is the hot path's acceptance gate: once the
// scratch pool is warm and the caller reuses its result buffer, a
// block-scored k-NN and a range search allocate nothing — for the R-tree
// (pure rectangle kernels) and for JB (bitten-MinDist kernels, the hardest
// case). Under -race it still drives the warm loop (validating the pooled
// scratch, block scoring, and bound heap against the race detector) but
// skips the alloc counts, which are unreliable there: sync.Pool drops items
// randomly.
func TestSearchSteadyStateZeroAlloc(t *testing.T) {
	for _, kind := range []am.Kind{am.KindRTree, am.KindJB} {
		t.Run(string(kind), func(t *testing.T) {
			tree, queries := benchSetup(t, kind)
			radii := benchRadii(t, tree, queries)
			dst := make([]Result, 0, 4*benchK)
			warm := func() {
				for i := range queries {
					dst, _ = SearchCtxInto(nil, tree, queries[i], benchK, nil, dst[:0])
					dst, _ = RangeCtxInto(nil, tree, queries[i], radii[i], nil, dst[:0])
				}
			}
			warm()
			if raceEnabled {
				return
			}
			i := 0
			knn := testing.AllocsPerRun(100, func() {
				dst, _ = SearchCtxInto(nil, tree, queries[i%len(queries)], benchK, nil, dst[:0])
				i++
			})
			if knn != 0 {
				t.Errorf("steady-state KNN: %.1f allocs/op, want 0", knn)
			}
			i = 0
			rng := testing.AllocsPerRun(100, func() {
				j := i % len(queries)
				dst, _ = RangeCtxInto(nil, tree, queries[j], radii[j], nil, dst[:0])
				i++
			})
			if rng != 0 {
				t.Errorf("steady-state Range: %.1f allocs/op, want 0", rng)
			}
		})
	}
}

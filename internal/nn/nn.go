// Package nn implements exact k-nearest-neighbor search over a GiST using
// the best-first (incremental) algorithm of Hjaltason and Samet: a single
// priority queue holds both unexplored subtrees, ordered by the extension's
// admissible MinDist2 lower bound, and already-seen data points, ordered by
// their true distance. Popping the queue in distance order yields neighbors
// incrementally and visits provably no more nodes than any algorithm using
// the same bounds — in essence the "expanding sphere" query of paper §5.
//
// Because every Extension's MinDist2 is admissible (it never overestimates
// the distance to data under the predicate; see the property tests in
// internal/geom and internal/am), the search is exact for all six access
// methods, including JB and XJB whose corner bites tighten the bound.
//
// Every search borrows its frontier and traversal scratch from a
// package-level sync.Pool for the duration of one call (see searchScratch),
// so steady-state queries allocate nothing, and holds the tree's read lock
// while touching nodes, so any number of searches run concurrently with
// each other and with a single writer. The Ctx variants additionally honor
// context cancellation mid-traversal, checked once per visited node. The
// Into variants append into a caller-supplied result buffer, which is what
// lets a replay loop run whole workloads without per-query allocation.
package nn

import (
	"context"
	"slices"

	"blobindex/internal/geom"
	"blobindex/internal/gist"
	"blobindex/internal/page"
)

// Result is one nearest neighbor, nearest first.
type Result struct {
	RID   int64
	Key   geom.Vector
	Dist2 float64
	// Leaf is the page that held the result — the amdb analysis uses it to
	// decide which accessed leaves actually contributed answers.
	Leaf page.PageID
}

// item is one priority-queue element: either a tree node awaiting expansion
// (referenced by page id — the node itself is pinned against the tree's
// store only while it is expanded) or a concrete data point.
type item struct {
	dist2  float64
	seq    int // FIFO tie-break for determinism
	child  page.PageID
	isNode bool
	res    Result // valid when !isNode
}

// pq is a binary min-heap of items; its ordering and sift operations live
// in scratch.go.
type pq []item

// Search returns the k nearest neighbors of q in the tree, nearest first.
// Fewer than k results are returned when the tree holds fewer points. If
// trace is non-nil, every node whose page the search reads is recorded, in
// read order. The tree's read lock is held for the duration, so searches
// run concurrently with each other and serialize against writers.
func Search(t *gist.Tree, q geom.Vector, k int, trace *gist.Trace) []Result {
	res, _ := SearchCtx(nil, t, q, k, trace)
	return res
}

// SearchInto is Search appending the results to dst and returning the
// extended slice; passing a reused buffer keeps the steady-state query path
// allocation-free.
func SearchInto(t *gist.Tree, q geom.Vector, k int, trace *gist.Trace, dst []Result) []Result {
	out, _ := SearchCtxInto(nil, t, q, k, trace, dst)
	return out
}

// SearchCtx is Search with cancellation: once ctx is done mid-traversal the
// search stops reading pages and returns ctx's error. A nil ctx means no
// cancellation.
func SearchCtx(ctx context.Context, t *gist.Tree, q geom.Vector, k int, trace *gist.Trace) ([]Result, error) {
	if k <= 0 || t.Len() == 0 {
		return nil, ctxErr(ctx)
	}
	out, err := SearchCtxInto(ctx, t, q, k, trace, make([]Result, 0, k))
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SearchCtxInto is SearchCtx appending the results to dst and returning the
// extended slice. On error dst is returned truncated to its original
// length. The engine is the two-heap bounded best-first search of knn.go,
// output-identical to the incremental Iterator but without per-point
// priority-queue traffic.
func SearchCtxInto(ctx context.Context, t *gist.Tree, q geom.Vector, k int, trace *gist.Trace, dst []Result) ([]Result, error) {
	base := len(dst)
	if k <= 0 || t.Len() == 0 {
		return dst, ctxErr(ctx)
	}
	t.RLock()
	defer t.RUnlock()
	sc := getScratch()
	s := knnSearch{tree: t, store: t.Store(), query: q, trace: trace, ctx: ctx, k: k,
		queue: sc.nqueue, dists: sc.dists, pairs: sc.pairs, pairs2: sc.pairs2,
		hd: sc.bound[:0], hidx: sc.kidx[:0], res: sc.results[:0]}
	s.pf, _ = s.store.(gist.Prefetcher)
	s.run(t.RootID())
	if s.err == nil {
		dst = s.emit(dst)
	}
	sc.nqueue, sc.dists, sc.bound, sc.kidx, sc.pairs, sc.pairs2, sc.results =
		s.queue, s.dists, s.hd, s.hidx, s.pairs, s.pairs2, s.res
	sc.release()
	if s.err != nil {
		return dst[:base], s.err
	}
	return dst, nil
}

// ctxErr returns ctx.Err() tolerating a nil context.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// BruteForce returns the exact k nearest neighbors by scanning the given
// points; it is the oracle the tests and the recall experiments compare
// index results against, and doubles as the "sequential scan of the flat
// file" baseline of paper §3.2.
func BruteForce(pts []gist.Point, q geom.Vector, k int) []Result {
	if k <= 0 {
		return nil
	}
	// Keep the k best in a max-heap of size k.
	best := make([]Result, 0, k)
	worst := func() float64 { return best[0].Dist2 }
	down := func() {
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			big := i
			if l < len(best) && best[l].Dist2 > best[big].Dist2 {
				big = l
			}
			if r < len(best) && best[r].Dist2 > best[big].Dist2 {
				big = r
			}
			if big == i {
				return
			}
			best[i], best[big] = best[big], best[i]
			i = big
		}
	}
	up := func() {
		i := len(best) - 1
		for i > 0 {
			p := (i - 1) / 2
			if best[p].Dist2 >= best[i].Dist2 {
				return
			}
			best[p], best[i] = best[i], best[p]
			i = p
		}
	}
	for _, p := range pts {
		d := q.Dist2(p.Key)
		if len(best) < k {
			best = append(best, Result{RID: p.RID, Key: p.Key, Dist2: d})
			up()
		} else if d < worst() {
			best[0] = Result{RID: p.RID, Key: p.Key, Dist2: d}
			down()
		}
	}
	// Sort ascending by distance (the heap is max-first), breaking distance
	// ties by RID for determinism.
	out := make([]Result, len(best))
	copy(out, best)
	slices.SortFunc(out, compareResults)
	return out
}

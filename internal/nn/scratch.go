package nn

import (
	"sync"

	"blobindex/internal/page"
)

// searchScratch bundles the per-query transient state of the search
// algorithms — the best-first frontier, the range-descent stack and the
// radius-estimation distances — so one workload's queries recycle a few
// buffers instead of reallocating them per call. Instances cycle through a
// sync.Pool; a search borrows one for the duration of a single call, so
// scratch never crosses goroutines.
type searchScratch struct {
	nqueue  npq // node frontier heap (knnSearch and SearchApprox)
	stack   []page.PageID
	dists   []float64
	idx     []int32   // range-filter survivor indices (RangeFlatBlock)
	bound   []float64 // k-NN bound-heap distance lane (knnSearch.hd)
	kidx    []int32   // k-NN bound-heap result-index lane
	pairs   []knnPair // k-NN emit sort scratch
	pairs2  []knnPair // k-NN emit scatter space
	results []Result
}

var scratchPool = sync.Pool{New: func() any { return new(searchScratch) }}

func getScratch() *searchScratch { return scratchPool.Get().(*searchScratch) }

// release empties the buffers and returns the scratch to the pool. Result
// entries are cleared first so a pooled scratch never holds key views of an
// index the caller has dropped; the frontier heap and descent stack hold
// only page ids and scalars.
func (s *searchScratch) release() {
	s.nqueue = s.nqueue[:0]
	s.stack = s.stack[:0]
	s.dists = s.dists[:0]
	s.idx = s.idx[:0]
	s.bound = s.bound[:0]
	s.kidx = s.kidx[:0]
	s.pairs = s.pairs[:0]
	s.pairs2 = s.pairs2[:0]
	for i := range s.results {
		s.results[i] = Result{}
	}
	s.results = s.results[:0]
	scratchPool.Put(s)
}

// The priority queue is a hand-rolled binary min-heap rather than a
// container/heap.Interface: the interface's Push(any)/Pop() box every item
// into an interface value, which was the dominant per-query heap allocation
// of the search hot path. The ordering key (dist2, point-before-node, seq)
// is a total order — seq is unique — so the pop sequence is independent of
// heap internals and identical to the container/heap implementation it
// replaces.

func (q pq) less(i, j int) bool {
	if q[i].dist2 != q[j].dist2 {
		return q[i].dist2 < q[j].dist2
	}
	// Prefer points over nodes at equal distance so results surface early,
	// then FIFO order.
	if q[i].isNode != q[j].isNode {
		return !q[i].isNode
	}
	return q[i].seq < q[j].seq
}

// pushItem adds x and sifts it up.
func (q *pq) pushItem(x item) {
	*q = append(*q, x)
	h := *q
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// popItem removes and returns the minimum element, zeroing the vacated slot
// so pooled queues hold no stale node or key references past their length.
func (q *pq) popItem() item {
	h := *q
	n := len(h) - 1
	h[0], h[n] = h[n], h[0]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		j := l
		if r := l + 1; r < n && h.less(r, l) {
			j = r
		}
		if !h.less(j, i) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
	it := h[n]
	h[n] = item{}
	*q = h[:n]
	return it
}

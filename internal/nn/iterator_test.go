package nn

import (
	"math/rand"
	"testing"

	"blobindex/internal/am"
	"blobindex/internal/geom"
	"blobindex/internal/gist"
)

func TestIteratorMatchesSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	pts := randomPoints(rng, 2500, 3)
	for _, kind := range []am.Kind{am.KindRTree, am.KindJB} {
		tree := buildTree(t, kind, pts, 3)
		for trial := 0; trial < 10; trial++ {
			q := geom.Vector{rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 100}
			want := Search(tree, q, 30, nil)
			it := NewIterator(tree, q, nil)
			for i, w := range want {
				got, ok := it.Next()
				if !ok {
					t.Fatalf("%s: iterator exhausted at %d", kind, i)
				}
				if got.Dist2 != w.Dist2 {
					t.Fatalf("%s: result %d dist %v, want %v", kind, i, got.Dist2, w.Dist2)
				}
			}
		}
	}
}

func TestIteratorExhaustsTree(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	pts := randomPoints(rng, 321, 2)
	tree := buildTree(t, am.KindRTree, pts, 2)
	it := NewIterator(tree, geom.Vector{0, 0}, nil)
	count := 0
	prev := -1.0
	for {
		r, ok := it.Next()
		if !ok {
			break
		}
		if r.Dist2 < prev {
			t.Fatal("iterator not in distance order")
		}
		prev = r.Dist2
		count++
	}
	if count != 321 {
		t.Errorf("iterated %d results, want 321", count)
	}
	// Exhausted iterator keeps returning false.
	if _, ok := it.Next(); ok {
		t.Error("exhausted iterator yielded a result")
	}
}

func TestIteratorEmptyTree(t *testing.T) {
	tree, err := gist.New(am.RTree(), gist.Config{Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	it := NewIterator(tree, geom.Vector{1, 1}, nil)
	if _, ok := it.Next(); ok {
		t.Error("empty tree yielded a result")
	}
}

// Early termination is the point: taking 5 of 5000 neighbors must touch far
// fewer pages than a full scan of the tree.
func TestIteratorLazyIO(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	pts := randomPoints(rng, 5000, 3)
	tree := buildTree(t, am.KindRTree, pts, 3)
	var trace gist.Trace
	it := NewIterator(tree, pts[77].Key, &trace)
	for i := 0; i < 5; i++ {
		if _, ok := it.Next(); !ok {
			t.Fatal("iterator exhausted early")
		}
	}
	if got, total := len(trace.Accesses), tree.NumPages(); got > total/4 {
		t.Errorf("5-NN touched %d of %d pages", got, total)
	}
}

func TestIteratorNextWithin(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	pts := randomPoints(rng, 1000, 2)
	tree := buildTree(t, am.KindRTree, pts, 2)
	q := geom.Vector{50, 50}

	it := NewIterator(tree, q, nil)
	var got []Result
	for {
		r, ok := it.NextWithin(25) // radius 5
		if !ok {
			break
		}
		got = append(got, r)
	}
	want, _ := tree.RangeSearch(q, 25, nil)
	if len(got) != len(want) {
		t.Fatalf("NextWithin found %d, range search %d", len(got), len(want))
	}
	// Widening the radius resumes the same scan without losing results.
	var more []Result
	for {
		r, ok := it.NextWithin(100) // radius 10
		if !ok {
			break
		}
		more = append(more, r)
	}
	wider, _ := tree.RangeSearch(q, 100, nil)
	if len(got)+len(more) != len(wider) {
		t.Errorf("resumed scan found %d total, want %d", len(got)+len(more), len(wider))
	}
	for _, r := range more {
		if r.Dist2 <= 25 {
			t.Error("resumed scan re-yielded an inner result")
		}
	}
}

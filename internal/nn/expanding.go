package nn

import (
	"context"
	"slices"

	"blobindex/internal/geom"
	"blobindex/internal/gist"
	"blobindex/internal/page"
)

// SearchExpanding implements nearest-neighbor search the way the paper's
// access methods execute it: "Nearest neighbor queries work by finding
// points within a given distance of the query point, in essence asking
// expanding sphere queries" (§5). The GiST SEARCH template only answers
// predicate (range) queries, so k-NN is:
//
//  1. a greedy probe from the root to the most promising leaf, whose
//     contents furnish an initial radius estimate (the distance to the
//     k-th nearest point of that leaf, when it has that many);
//  2. range queries with that radius, doubling it and re-descending from
//     the root until at least k points fall inside the sphere.
//
// The final answer — the k nearest of the last sphere's contents — is
// exact: once a sphere holds k points, the true k nearest neighbors all lie
// within it. Unlike the best-first search, however, the I/O cost depends
// directly on bounding predicate quality at every iteration: each range
// descent visits precisely the subtrees whose predicate intersects the
// current sphere, so predicates with empty-corner excess (plain MBRs) pay
// for it on every sphere, which is the effect the paper's analysis
// measures and the JB/XJB predicates remove.
func SearchExpanding(t *gist.Tree, q geom.Vector, k int, trace *gist.Trace) []Result {
	res, _ := SearchExpandingCtx(nil, t, q, k, trace)
	return res
}

// SearchExpandingCtx is SearchExpanding with cancellation: once ctx is done
// the traversal stops and ctx's error is returned. A nil ctx means no
// cancellation.
func SearchExpandingCtx(ctx context.Context, t *gist.Tree, q geom.Vector, k int, trace *gist.Trace) ([]Result, error) {
	return SearchExpandingCtxInto(ctx, t, q, k, trace, nil)
}

// SearchExpandingCtxInto is SearchExpandingCtx appending the results to dst
// and returning the extended slice. On error dst is returned truncated to
// its original length.
func SearchExpandingCtxInto(ctx context.Context, t *gist.Tree, q geom.Vector, k int, trace *gist.Trace, dst []Result) ([]Result, error) {
	base := len(dst)
	total := t.Len()
	if k <= 0 || total == 0 {
		return dst, ctxErr(ctx)
	}
	ext := t.Ext()
	t.RLock()
	defer t.RUnlock()
	store := t.Store()
	sc := getScratch()

	// Greedy probe: descend along the minimal-MinDist2 child, pinning one
	// page at a time.
	n, err := store.Pin(t.RootID())
	if err != nil {
		sc.release()
		return dst[:base], err
	}
	for {
		trace.Record(n)
		if n.IsLeaf() {
			break
		}
		best, bestD := 0, ext.MinDist2(n.ChildPred(0), q)
		for i := 1; i < n.NumEntries(); i++ {
			if d := ext.MinDist2(n.ChildPred(i), q); d < bestD {
				best, bestD = i, d
			}
		}
		child, err := store.Pin(n.ChildID(best))
		store.Unpin(n)
		if err != nil {
			sc.release()
			return dst[:base], err
		}
		n = child
	}
	flat, dim := n.FlatKeys(), n.Dim()
	dists := geom.Dist2FlatBlock(q, flat[:n.NumEntries()*dim], dim, sc.dists[:0])
	store.Unpin(n)
	slices.Sort(dists)
	sc.dists = dists
	// Start from a low quantile of the probe leaf's distances: an STR leaf
	// can span several point clusters, so its diameter badly overestimates
	// the k-th neighbor distance; undershooting is cheap (the re-descent
	// revisits mostly-buffered pages) while overshooting drags the final
	// sphere across leaves that hold no neighbors.
	var radius2 float64
	if len(dists) == 0 {
		radius2 = 1e-6
	} else {
		est := min(k, len(dists)) / 4
		if est >= len(dists) {
			est = len(dists) - 1
		}
		radius2 = dists[est]
	}
	if radius2 <= 0 {
		// The probe leaf held ≥k copies of the query point; any positive
		// sphere suffices.
		radius2 = 1e-12
	}

	// Expanding sphere: re-descend from the root until the sphere holds k.
	// Each round harvests into the scratch result buffer; only the final
	// round's top k are copied out to dst.
	for {
		out := sc.results[:0]
		err := rangeHarvest(ctx, t, t.RootID(), q, radius2, trace, &out, sc)
		sc.results = out
		if err != nil {
			sc.release()
			return dst[:base], err
		}
		if len(out) >= k || len(out) >= total {
			sortResults(out)
			if k < len(out) {
				out = out[:k]
			}
			dst = append(dst, out...)
			sc.release()
			return dst, nil
		}
		radius2 *= 2 // grow the radius by √2 (distances are squared)
	}
}

// SearchSphere executes one k-NN query as a single range query at the
// query's true k-th-neighbor radius: the radius is first computed exactly
// (without I/O accounting), then one range descent visits every subtree
// whose bounding predicate intersects that sphere. This is the idealized
// "expanding sphere" of paper §5 and Figure 9 — the same sphere for every
// access method, so the traced I/O isolates pure bounding-predicate
// quality: a leaf is read iff its predicate intersects the query sphere,
// and the read is excess iff the leaf holds no point inside the sphere.
// It is the default execution model of the amdb analysis in this
// reproduction.
func SearchSphere(t *gist.Tree, q geom.Vector, k int, trace *gist.Trace) []Result {
	res, _ := SearchSphereCtx(nil, t, q, k, trace)
	return res
}

// SearchSphereCtx is SearchSphere with cancellation.
func SearchSphereCtx(ctx context.Context, t *gist.Tree, q geom.Vector, k int, trace *gist.Trace) ([]Result, error) {
	return SearchSphereCtxInto(ctx, t, q, k, trace, nil)
}

// SearchSphereCtxInto is SearchSphereCtx appending the results to dst and
// returning the extended slice. On error dst is returned truncated to its
// original length.
func SearchSphereCtxInto(ctx context.Context, t *gist.Tree, q geom.Vector, k int, trace *gist.Trace, dst []Result) ([]Result, error) {
	base := len(dst)
	if k <= 0 || t.Len() == 0 {
		return dst, ctxErr(ctx)
	}
	sc := getScratch()
	// Exact k-NN (no I/O accounting) for the true k-th-neighbor radius; the
	// results land in the scratch buffer and only the radius survives.
	exact, err := SearchCtxInto(ctx, t, q, k, nil, sc.results[:0])
	sc.results = exact
	if err != nil {
		sc.release()
		return dst[:base], err
	}
	if len(exact) == 0 {
		sc.release()
		return dst, nil
	}
	radius2 := exact[len(exact)-1].Dist2
	t.RLock()
	defer t.RUnlock()
	out := dst
	if err := rangeHarvest(ctx, t, t.RootID(), q, radius2, trace, &out, sc); err != nil {
		sc.release()
		return dst[:base], err
	}
	sc.release()
	sortResults(out[base:])
	if base+k < len(out) {
		out = out[:base+k]
	}
	return out, nil
}

// Range returns every point within squared distance radius2 of q, nearest
// first, visiting exactly the subtrees whose bounding predicate intersects
// the query sphere.
func Range(t *gist.Tree, q geom.Vector, radius2 float64, trace *gist.Trace) []Result {
	res, _ := RangeCtx(nil, t, q, radius2, trace)
	return res
}

// RangeInto is Range appending the results to dst and returning the
// extended slice.
func RangeInto(t *gist.Tree, q geom.Vector, radius2 float64, trace *gist.Trace, dst []Result) []Result {
	out, _ := RangeCtxInto(nil, t, q, radius2, trace, dst)
	return out
}

// RangeCtx is Range with cancellation: once ctx is done mid-traversal the
// descent stops and ctx's error is returned.
func RangeCtx(ctx context.Context, t *gist.Tree, q geom.Vector, radius2 float64, trace *gist.Trace) ([]Result, error) {
	return RangeCtxInto(ctx, t, q, radius2, trace, nil)
}

// RangeCtxInto is RangeCtx appending the results to dst and returning the
// extended slice. On error dst is returned truncated to its original
// length.
func RangeCtxInto(ctx context.Context, t *gist.Tree, q geom.Vector, radius2 float64, trace *gist.Trace, dst []Result) ([]Result, error) {
	base := len(dst)
	if t.Len() == 0 {
		return dst, ctxErr(ctx)
	}
	t.RLock()
	defer t.RUnlock()
	sc := getScratch()
	out := dst
	err := rangeHarvest(ctx, t, t.RootID(), q, radius2, trace, &out, sc)
	sc.release()
	if err != nil {
		return dst[:base], err
	}
	sortResults(out[base:])
	return out, nil
}

// compareResults orders results nearest first, breaking distance ties by
// RID. Because RIDs are unique within a result set the order is total, so
// the (unstable) sort below is deterministic.
func compareResults(a, b Result) int {
	if a.Dist2 != b.Dist2 {
		if a.Dist2 < b.Dist2 {
			return -1
		}
		return 1
	}
	switch {
	case a.RID < b.RID:
		return -1
	case a.RID > b.RID:
		return 1
	}
	return 0
}

// sortResults orders results nearest first, breaking distance ties by RID
// for determinism. The specialized introsort (sort.go) keeps the comparison
// inline on the query hot path.
func sortResults(out []Result) {
	sortResultsFast(out)
}

// rangeHarvest descends every subtree whose predicate intersects the query
// sphere, collecting the points inside it with their leaf attributions. The
// descent is an explicit stack of page ids (borrowed from sc) rather than
// recursion; children are pushed in reverse entry order so pages pop in
// exactly the depth-first pre-order the recursive form visited, and each
// page is pinned only while it is scanned. The caller must hold the tree's
// read lock; ctx is checked once per visited node so cancellation lands
// mid-traversal.
func rangeHarvest(ctx context.Context, t *gist.Tree, root page.PageID, q geom.Vector, radius2 float64, trace *gist.Trace, out *[]Result, sc *searchScratch) error {
	ext := t.Ext()
	store := t.Store()
	pf, _ := store.(gist.Prefetcher)
	stack := append(sc.stack[:0], root)
	for len(stack) > 0 {
		if err := ctxErr(ctx); err != nil {
			sc.stack = stack
			return err
		}
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n, err := store.Pin(id)
		if err != nil {
			sc.stack = stack
			return err
		}
		trace.Record(n)
		if n.IsLeaf() {
			flat, d := n.FlatKeys(), n.Dim()
			sc.idx, sc.dists = geom.RangeFlatBlock(q, flat[:n.NumEntries()*d], d, radius2, sc.idx[:0], sc.dists[:0])
			for j, i := range sc.idx {
				*out = append(*out, Result{
					RID:   n.LeafRID(int(i)),
					Key:   n.LeafKey(int(i)),
					Dist2: sc.dists[j],
					Leaf:  n.ID(),
				})
			}
			store.Unpin(n)
			continue
		}
		for i := n.NumEntries() - 1; i >= 0; i-- {
			if ext.MinDist2(n.ChildPred(i), q) <= radius2 {
				stack = append(stack, n.ChildID(i))
			}
		}
		store.Unpin(n)
		if pf != nil {
			// Warm the pages just below the descent top (the top itself is
			// popped and pinned immediately after this iteration).
			for i, hints := len(stack)-2, 0; i >= 0 && hints < prefetchWidth; i, hints = i-1, hints+1 {
				pf.Prefetch(stack[i])
			}
		}
	}
	sc.stack = stack
	return nil
}

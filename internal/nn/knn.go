package nn

import (
	"context"

	"blobindex/internal/geom"
	"blobindex/internal/gist"
	"blobindex/internal/page"
)

// knnSearch is the bounded k-NN engine behind SearchCtxInto. It splits the
// classic Hjaltason–Samet single queue in two:
//
//   - the priority queue holds ONLY unexpanded subtrees, ordered by
//     (MinDist2, discovery order);
//   - data points go straight into a k-bounded max-heap of the best points
//     seen so far (worst at the root), which doubles as the result set.
//
// The single-queue formulation pays heap traffic per scored point — push,
// eventual pop, and ~70 bytes of item copied per sift level; profiling the
// 48k-blob 200-NN workload put over half the query in that traffic. Here a
// point costs one compare against the root of the bound heap, and only an
// improving point sifts 12-byte lanes (distance + result index, with the
// Result payload written once into an append-only buffer).
//
// Equivalence with the single-queue search: nodes expand in exactly the old
// relative order — (MinDist2, seq) with seq assigned in expansion order —
// because point items never reorder node items. A subtree is expanded iff
// its MinDist2 beats the current k-th best distance strictly; ties lose,
// matching the old points-before-nodes pop order. The output is the k
// smallest (distance, discovery order) pairs — precisely the first k points
// the old search popped — emitted in the same ascending order. Dropped
// points (distance >= the full heap's root) can never be among those k: the
// root only shrinks, and a tie loses to the earlier-discovered incumbent.
type knnSearch struct {
	tree  *gist.Tree
	store gist.NodeStore
	query geom.Vector
	trace *gist.Trace
	ctx   context.Context
	err   error
	pf    gist.Prefetcher
	k     int
	queue npq
	seq   int32
	dists []float64

	// The bound heap: parallel lanes keyed by (hd desc, hidx desc), hidx
	// pointing into the append-only res buffer. res grows only on insertion,
	// so an entry's res index doubles as its discovery order.
	hd     []float64
	hidx   []int32
	res    []Result
	pairs  []knnPair // emit-time sort scratch
	pairs2 []knnPair // emit-time scatter space (bucketSortPairs)
}

// nodeItem is one frontier entry: an unexpanded subtree at its admissible
// lower bound. Unlike the incremental Iterator's item it carries no Result
// payload, so the frontier heap sifts 24 bytes per level instead of ~70.
type nodeItem struct {
	d     float64
	child page.PageID
	seq   int32
}

func nodeLess(a, b nodeItem) bool {
	if a.d != b.d {
		return a.d < b.d
	}
	return a.seq < b.seq
}

// npq is a 4-ary min-heap of frontier nodes ordered by (d, seq) — the
// subtree part of the classic single-queue order, which is all the bounded
// search and the wholesale harvest of SearchApprox need. Four-way branching
// halves the sift depth and keeps a parent's children in adjacent slots;
// since (d, seq) keys are unique, the pop sequence is the same as any other
// heap arity's, so layout is a pure performance choice.
type npq []nodeItem

func (q *npq) push(x nodeItem) {
	h := append(*q, x)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !nodeLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	*q = h
}

func (q *npq) pop() nodeItem {
	h := *q
	n := len(h) - 1
	top := h[0]
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l := 4*i + 1
		if l >= n {
			break
		}
		j := l
		for c := l + 1; c < l+4 && c < n; c++ {
			if nodeLess(h[c], h[j]) {
				j = c
			}
		}
		if !nodeLess(h[j], h[i]) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
	*q = h
	return top
}

// knnPair is emit's sort element: one kept neighbor's distance and res
// index. Sorting these 16-byte pairs with the specialized introsort beats
// both a heap drain and an index sort that chases res entries on every
// compare.
type knnPair struct {
	d  float64
	ix int32
}

func (s *knnSearch) full() bool { return len(s.hd) == s.k }

func (s *knnSearch) canceled() bool {
	if s.ctx == nil {
		return false
	}
	if err := s.ctx.Err(); err != nil {
		s.err = err
		return true
	}
	return false
}

// worse reports whether heap entry i ranks behind entry j — farther, or as
// far but discovered later.
func (s *knnSearch) worse(i, j int) bool {
	if s.hd[i] != s.hd[j] {
		return s.hd[i] > s.hd[j]
	}
	return s.hidx[i] > s.hidx[j]
}

func (s *knnSearch) swap(i, j int) {
	s.hd[i], s.hd[j] = s.hd[j], s.hd[i]
	s.hidx[i], s.hidx[j] = s.hidx[j], s.hidx[i]
}

func (s *knnSearch) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !s.worse(i, p) {
			return
		}
		s.swap(i, p)
		i = p
	}
}

// replaceRoot installs (d, ix) in place of the current worst entry and
// restores the heap with a top-down sift. Improving points usually land
// just under the displaced bound, so the sift typically stops within a
// level or two.
func (s *knnSearch) replaceRoot(d float64, ix int32) {
	n := len(s.hd)
	s.hd[0], s.hidx[0] = d, ix
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		j := l
		if r := l + 1; r < n && s.worse(r, l) {
			j = r
		}
		if !s.worse(j, i) {
			return
		}
		s.swap(i, j)
		i = j
	}
}

// offer folds one scored leaf point into the bound heap.
func (s *knnSearch) offer(d float64, n *gist.Node, i int) {
	if len(s.hd) == s.k {
		if d >= s.hd[0] {
			return // ties lose to the earlier-discovered incumbent
		}
		s.res = append(s.res, Result{RID: n.LeafRID(i), Key: n.LeafKey(i), Dist2: d, Leaf: n.ID()})
		s.replaceRoot(d, int32(len(s.res)-1))
		return
	}
	s.res = append(s.res, Result{RID: n.LeafRID(i), Key: n.LeafKey(i), Dist2: d, Leaf: n.ID()})
	s.hd = append(s.hd, d)
	s.hidx = append(s.hidx, int32(len(s.res)-1))
	s.siftUp(len(s.hd) - 1)
}

func (s *knnSearch) prefetchFrontier() {
	q := s.queue
	for i := 1; i < len(q) && i <= prefetchWidth; i++ {
		s.pf.Prefetch(q[i].child)
	}
}

// expand pins one subtree root, scores its contents, and releases the pin.
func (s *knnSearch) expand(top nodeItem) bool {
	n, err := s.store.Pin(top.child)
	if err != nil {
		s.err = err
		return false
	}
	s.trace.Record(n)
	if n.IsLeaf() {
		flat, d := n.FlatKeys(), n.Dim()
		s.dists = geom.Dist2FlatBlock(s.query, flat[:n.NumEntries()*d], d, s.dists[:0])
		if len(s.hd) == s.k {
			// Hot path: the heap is full, so almost every point loses to
			// the k-th best with one compare, no call.
			bound := s.hd[0]
			for i, dist := range s.dists {
				if dist >= bound {
					continue
				}
				s.offer(dist, n, i)
				bound = s.hd[0]
			}
		} else {
			for i, dist := range s.dists {
				s.offer(dist, n, i)
			}
		}
	} else {
		ext := s.tree.Ext()
		for i := 0; i < n.NumEntries(); i++ {
			m := ext.MinDist2(n.ChildPred(i), s.query)
			if s.full() && m >= s.hd[0] {
				continue // provably beyond the k-th best
			}
			s.queue.push(nodeItem{d: m, child: n.ChildID(i), seq: s.seq})
			s.seq++
		}
	}
	s.store.Unpin(n)
	if s.pf != nil {
		s.prefetchFrontier()
	}
	return true
}

// run descends from root until no frontier subtree can beat the k-th best.
func (s *knnSearch) run(root page.PageID) {
	s.queue.push(nodeItem{d: 0, child: root, seq: s.seq})
	s.seq++
	for len(s.queue) > 0 {
		if s.canceled() {
			return
		}
		top := s.queue.pop()
		if s.full() && top.d >= s.hd[0] {
			return // frontier minimum cannot beat the k-th best: done
		}
		if !s.expand(top) {
			return
		}
	}
}

// emit appends the kept neighbors to dst in ascending (distance, discovery)
// order. Sorting (distance, index) pairs is cheaper than a heap drain —
// one sort beats k log k multi-lane sifts — and the res index order is the
// discovery order.
func (s *knnSearch) emit(dst []Result) []Result {
	ps := s.pairs[:0]
	for i, d := range s.hd {
		ps = append(ps, knnPair{d: d, ix: s.hidx[i]})
	}
	if cap(s.pairs2) < len(ps) {
		s.pairs2 = make([]knnPair, len(ps))
	}
	bucketSortPairs(ps, s.pairs2[:len(ps)])
	for _, p := range ps {
		dst = append(dst, s.res[p.ix])
	}
	s.pairs = ps
	return dst
}

package nn

import (
	"math/rand"
	"testing"

	"blobindex/internal/am"
	"blobindex/internal/geom"
	"blobindex/internal/gist"
)

// SearchSphere and SearchExpanding are exact: their result distances must
// match the best-first search for every access method.
func TestSphereAndExpandingExact(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	pts := randomPoints(rng, 3000, 3)
	for _, kind := range am.Kinds() {
		tree := buildTree(t, kind, pts, 3)
		for trial := 0; trial < 10; trial++ {
			q := geom.Vector{rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 100}
			k := 1 + rng.Intn(40)
			want := Search(tree, q, k, nil)
			for name, fn := range map[string]func(*gist.Tree, geom.Vector, int, *gist.Trace) []Result{
				"sphere":    SearchSphere,
				"expanding": SearchExpanding,
			} {
				got := fn(tree, q, k, nil)
				if len(got) != len(want) {
					t.Fatalf("%s/%s: %d results, want %d", kind, name, len(got), len(want))
				}
				for i := range got {
					if got[i].Dist2 != want[i].Dist2 {
						t.Fatalf("%s/%s: result %d dist %v, want %v",
							kind, name, i, got[i].Dist2, want[i].Dist2)
					}
				}
			}
		}
	}
}

func TestSphereEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	pts := randomPoints(rng, 100, 2)
	tree := buildTree(t, am.KindRTree, pts, 2)
	if got := SearchSphere(tree, geom.Vector{1, 1}, 0, nil); got != nil {
		t.Error("k=0 should return nil")
	}
	empty, err := gist.New(tree.Ext(), gist.Config{Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := SearchSphere(empty, geom.Vector{1, 1}, 3, nil); got != nil {
		t.Error("empty tree should return nil")
	}
	if got := SearchExpanding(empty, geom.Vector{1, 1}, 3, nil); got != nil {
		t.Error("empty tree should return nil")
	}
	if got := SearchApprox(empty, geom.Vector{1, 1}, 3, nil); got != nil {
		t.Error("empty tree should return nil")
	}
}

func TestExpandingKLargerThanTree(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pts := randomPoints(rng, 60, 2)
	tree := buildTree(t, am.KindRTree, pts, 2)
	got := SearchExpanding(tree, geom.Vector{50, 50}, 1000, nil)
	if len(got) != 60 {
		t.Errorf("got %d results, want all 60", len(got))
	}
}

func TestExpandingDuplicatePoints(t *testing.T) {
	// All points identical: the probe's radius estimate degenerates to
	// zero; the search must still terminate and return k copies.
	pts := make([]gist.Point, 50)
	for i := range pts {
		pts[i] = gist.Point{Key: geom.Vector{3, 3}, RID: int64(i)}
	}
	tree := buildTree(t, am.KindRTree, pts, 2)
	got := SearchExpanding(tree, geom.Vector{3, 3}, 10, nil)
	if len(got) != 10 {
		t.Fatalf("got %d results, want 10", len(got))
	}
	for _, r := range got {
		if r.Dist2 != 0 {
			t.Errorf("dist = %v, want 0", r.Dist2)
		}
	}
}

// The harvest search is approximate but must return k results sorted by
// distance, and with a quality no better than exact (sanity).
func TestApproxHarvestBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	pts := randomPoints(rng, 2000, 2)
	tree := buildTree(t, am.KindRTree, pts, 2)
	q := geom.Vector{50, 50}
	var trace gist.Trace
	got := SearchApprox(tree, q, 100, &trace)
	if len(got) != 100 {
		t.Fatalf("got %d results", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Dist2 < got[i-1].Dist2 {
			t.Fatal("harvest results not sorted")
		}
	}
	// Harvest reads the minimum number of leaves needed for k candidates.
	minLeaves := (100 + tree.LeafCapacity() - 1) / tree.LeafCapacity()
	if trace.LeafAccesses() < minLeaves {
		t.Errorf("harvest read %d leaves, cannot be under %d", trace.LeafAccesses(), minLeaves)
	}
	// The exact k-th distance lower-bounds the harvest's k-th distance.
	exact := Search(tree, q, 100, nil)
	if got[99].Dist2 < exact[99].Dist2-1e-12 {
		t.Error("approximate k-th distance beat the exact one")
	}
}

// Sphere-mode traces must be supersets of nothing extra: every access method
// visits at least the leaves containing results, and JB visits no more
// leaves than the R-tree on the same sphere.
func TestSphereTraceMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	pts := randomPoints(rng, 4000, 3)
	rt := buildTree(t, am.KindRTree, pts, 3)
	jb := buildTree(t, am.KindJB, pts, 3)
	var rtLeaves, jbLeaves int
	for trial := 0; trial < 20; trial++ {
		q := geom.Vector{rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 100}
		var rtTrace, jbTrace gist.Trace
		SearchSphere(rt, q, 50, &rtTrace)
		SearchSphere(jb, q, 50, &jbTrace)
		rtLeaves += rtTrace.LeafAccesses()
		jbLeaves += jbTrace.LeafAccesses()
	}
	if jbLeaves > rtLeaves {
		t.Errorf("JB sphere accesses %d exceed R-tree %d", jbLeaves, rtLeaves)
	}
}

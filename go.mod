module blobindex

go 1.23

module blobindex

go 1.22

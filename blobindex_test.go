package blobindex

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

func randPoints(rng *rand.Rand, n, dim int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		k := make([]float64, dim)
		for d := range k {
			k[d] = rng.Float64() * 100
		}
		pts[i] = Point{Key: k, RID: int64(i)}
	}
	return pts
}

func TestBuildAndSearchEveryMethod(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := randPoints(rng, 2000, 3)
	for _, m := range Methods() {
		t.Run(string(m), func(t *testing.T) {
			idx, err := Build(pts, Options{Method: m, Dim: 3, PageSize: 2048, AMAPSamples: 64})
			if err != nil {
				t.Fatal(err)
			}
			if err := idx.Check(); err != nil {
				t.Fatalf("integrity: %v", err)
			}
			if idx.Len() != 2000 {
				t.Errorf("Len = %d", idx.Len())
			}
			q := []float64{50, 50, 50}
			res := idx.SearchKNN(q, 10)
			if len(res) != 10 {
				t.Fatalf("got %d results", len(res))
			}
			// Verify against brute force.
			type pair struct {
				rid int64
				d   float64
			}
			best := pair{d: math.Inf(1)}
			for _, p := range pts {
				var d float64
				for i := range q {
					d += (q[i] - p.Key[i]) * (q[i] - p.Key[i])
				}
				if d := math.Sqrt(d); d < best.d {
					best = pair{p.RID, d}
				}
			}
			if res[0].RID != best.rid || math.Abs(res[0].Dist-best.d) > 1e-9 {
				t.Errorf("nearest = (%d, %f), want (%d, %f)",
					res[0].RID, res[0].Dist, best.rid, best.d)
			}
		})
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := Build(nil, Options{}); err == nil {
		t.Error("missing Dim should error")
	}
	if _, err := New(Options{}); err == nil {
		t.Error("missing Dim should error")
	}
	bad := []Point{{Key: []float64{1, 2}, RID: 1}}
	if _, err := Build(bad, Options{Dim: 3}); err == nil {
		t.Error("dimension mismatch should error")
	}
}

func TestDefaultMethodIsXJB(t *testing.T) {
	idx, err := New(Options{Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Stats().Method != XJB {
		t.Errorf("default method = %s, want xjb", idx.Stats().Method)
	}
}

func TestInsertDeleteTighten(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	idx, err := New(Options{Method: JB, Dim: 2, PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	pts := randPoints(rng, 500, 2)
	for _, p := range pts {
		if err := idx.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := idx.Tighten(); err != nil {
		t.Fatal(err)
	}
	if err := idx.Check(); err != nil {
		t.Fatalf("integrity after tighten: %v", err)
	}
	ok, err := idx.Delete(pts[7].Key, pts[7].RID)
	if err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	if idx.Len() != 499 {
		t.Errorf("Len = %d", idx.Len())
	}
	if err := idx.Insert(Point{Key: []float64{1}, RID: 9999}); err == nil {
		t.Error("bad dimension insert should error")
	}
}

func TestSearchRange(t *testing.T) {
	pts := []Point{
		{Key: []float64{0, 0}, RID: 1},
		{Key: []float64{3, 4}, RID: 2}, // distance 5 from origin
		{Key: []float64{10, 10}, RID: 3},
	}
	idx, err := Build(pts, Options{Method: RTree, Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	res := idx.SearchRange([]float64{0, 0}, 5)
	if len(res) != 2 {
		t.Fatalf("got %d results, want 2", len(res))
	}
	if res[0].RID != 1 || res[1].RID != 2 {
		t.Errorf("results = %+v", res)
	}
	if math.Abs(res[1].Dist-5) > 1e-12 {
		t.Errorf("dist = %v, want 5", res[1].Dist)
	}
}

func TestAnalyzePublic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := randPoints(rng, 3000, 3)
	idx, err := Build(pts, Options{Method: RTree, Dim: 3, PageSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]Query, 20)
	for i := range queries {
		queries[i] = Query{Center: pts[rng.Intn(len(pts))].Key, K: 25}
	}
	a, err := idx.Analyze(queries, AnalyzeOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.Queries != 20 || a.Method != RTree {
		t.Errorf("analysis header: %+v", a)
	}
	sum := a.OptimalIOs + a.ClusteringLoss + a.UtilizationLoss + a.ExcessCoverageLoss
	if math.Abs(sum-float64(a.LeafIOs)) > 1e-6 {
		t.Errorf("decomposition %f != leaf IOs %d", sum, a.LeafIOs)
	}
	if a.TotalIOs != a.LeafIOs+a.InnerIOs {
		t.Error("total != leaf + inner")
	}
	if a.PagesHitFraction <= 0 || a.PagesHitFraction > 1 {
		t.Errorf("PagesHitFraction = %v", a.PagesHitFraction)
	}
}

func TestCorpusReducerEndToEnd(t *testing.T) {
	corpus, err := GenerateCorpus(CorpusConfig{Images: 150, Seed: 4, FeatureDim: 60})
	if err != nil {
		t.Fatal(err)
	}
	if corpus.NumImages() != 150 || corpus.NumBlobs() < 300 {
		t.Fatalf("corpus shape: %d images, %d blobs", corpus.NumImages(), corpus.NumBlobs())
	}
	red, err := FitReducer(corpus.Features(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if red.Dim() != 5 {
		t.Errorf("Dim = %d", red.Dim())
	}
	ev := red.ExplainedVariance()
	if ev[4] <= ev[0] {
		t.Error("explained variance must grow with components")
	}
	reduced := red.ReduceAll(corpus.Features())
	pts := make([]Point, len(reduced))
	for i, v := range reduced {
		pts[i] = Point{Key: v, RID: int64(i)}
	}
	idx, err := Build(pts, Options{Method: XJB, Dim: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Query with blob 3: its own image must be the top full-ranking result
	// and among the index candidates.
	q := 3
	ref := corpus.RankImages(corpus.Feature(q), 5)
	if ref[0].Image != corpus.ImageOf(q) || ref[0].Dist != 0 {
		t.Errorf("full ranking top = %+v", ref[0])
	}
	nbrs := idx.SearchKNN(reduced[q], 50)
	var blobIDs []int64
	var images []int32
	for _, n := range nbrs {
		blobIDs = append(blobIDs, n.RID)
		images = append(images, corpus.ImageOf(int(n.RID)))
	}
	if r := Recall(ref, images); r == 0 {
		t.Error("candidates missed every reference image")
	}
	final := corpus.RankImagesAmong(corpus.Feature(q), blobIDs, 10)
	if len(final) == 0 || final[0].Image != corpus.ImageOf(q) {
		t.Errorf("re-ranked top = %+v, want the query's image", final)
	}
}

func TestQueryWeightedPublic(t *testing.T) {
	corpus, err := GenerateCorpus(CorpusConfig{Images: 120, Seed: 12, FeatureDim: 60})
	if err != nil {
		t.Fatal(err)
	}
	// Figure 3: "color is very important, location is not, texture is
	// so-so".
	w := Weights{Color: 1, Texture: 0.5, Location: 0}
	full := corpus.QueryWeighted(9, w, 10)
	if len(full) != 10 {
		t.Fatalf("got %d images", len(full))
	}
	if full[0].Image != corpus.ImageOf(9) || full[0].Dist != 0 {
		t.Errorf("the query blob's image should win: %+v", full[0])
	}
	// Indexed pipeline: AM candidates by color, weighted re-rank.
	red, err := FitReducer(corpus.Features(), 5)
	if err != nil {
		t.Fatal(err)
	}
	reduced := red.ReduceAll(corpus.Features())
	pts := make([]Point, len(reduced))
	for i, v := range reduced {
		pts[i] = Point{Key: v, RID: int64(i)}
	}
	idx, err := Build(pts, Options{Method: XJB, Dim: 5})
	if err != nil {
		t.Fatal(err)
	}
	nbrs := idx.SearchKNN(reduced[9], 100)
	blobIDs := make([]int64, len(nbrs))
	for i, n := range nbrs {
		blobIDs[i] = n.RID
	}
	amTop := corpus.QueryWeightedAmong(9, w, blobIDs, 10)
	if len(amTop) == 0 || amTop[0].Image != corpus.ImageOf(9) {
		t.Errorf("indexed weighted pipeline should also rank the query's image first")
	}
}

func TestAutoXPublic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := randPoints(rng, 3000, 4)
	x, err := AutoX(pts, 4, 4096, 16)
	if err != nil {
		t.Fatal(err)
	}
	if x < 1 || x > 16 {
		t.Errorf("AutoX = %d", x)
	}
}

func TestSaveOpenRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := randPoints(rng, 1500, 3)
	idx, err := Build(pts, Options{Method: XJB, Dim: 3, PageSize: 2048, XJBBites: 4})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/index.idx"
	if err := idx.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Check(); err != nil {
		t.Fatalf("integrity: %v", err)
	}
	st, lst := idx.Stats(), loaded.Stats()
	if st != lst {
		t.Errorf("stats changed: %+v vs %+v", st, lst)
	}
	q := pts[33].Key
	a := idx.SearchKNN(q, 15)
	b := loaded.SearchKNN(q, 15)
	for i := range a {
		if a[i].RID != b[i].RID || a[i].Dist != b[i].Dist {
			t.Fatalf("result %d differs after round trip", i)
		}
	}
	if _, err := Open(path + ".missing"); err == nil {
		t.Error("missing file should error")
	}
}

func TestCloseIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pts := randPoints(rng, 400, 3)
	idx, err := Build(pts, Options{Method: XJB, Dim: 3})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/index.idx"
	if err := idx.Save(path); err != nil {
		t.Fatal(err)
	}

	// A demand-paged index owns an open file; shutdown paths (a deferred
	// Close racing an explicit one, as in cmd/blobserved) must be able to
	// call Close any number of times.
	opened, err := OpenWithOptions(path, OpenOptions{PoolPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := opened.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := opened.Close(); err != nil {
		t.Fatalf("second Close must be a no-op, got: %v", err)
	}
	if err := opened.Close(); err != nil {
		t.Fatalf("third Close must be a no-op, got: %v", err)
	}

	// In-memory indexes have nothing to release but honor the same contract.
	if err := idx.Close(); err != nil {
		t.Fatalf("in-memory Close: %v", err)
	}
	if err := idx.Close(); err != nil {
		t.Fatalf("in-memory double Close: %v", err)
	}
}

func TestConcurrentSearches(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts := randPoints(rng, 3000, 3)
	idx, err := Build(pts, Options{Method: RTree, Dim: 3})
	if err != nil {
		t.Fatal(err)
	}
	queries := make([][]float64, 64)
	want := make([][]Neighbor, 64)
	for i := range queries {
		queries[i] = pts[rng.Intn(len(pts))].Key
		want[i] = idx.SearchKNN(queries[i], 10)
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i, q := range queries {
				got := idx.SearchKNN(q, 10)
				for j := range got {
					if got[j].RID != want[i][j].RID {
						done <- fmt.Errorf("query %d result %d differs under concurrency", i, j)
						return
					}
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestSearchIter(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := randPoints(rng, 800, 2)
	idx, err := Build(pts, Options{Method: XJB, Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	q := []float64{50, 50}
	want := idx.SearchKNN(q, 25)
	it := idx.SearchIter(q)
	for i, w := range want {
		got, ok := it.Next()
		if !ok {
			t.Fatalf("iterator ended at %d", i)
		}
		if got.RID != w.RID || math.Abs(got.Dist-w.Dist) > 1e-12 {
			t.Fatalf("result %d: %+v, want %+v", i, got, w)
		}
	}
	// NextWithin mirrors SearchRange.
	it2 := idx.SearchIter(q)
	var inRange int
	for {
		if _, ok := it2.NextWithin(10); !ok {
			break
		}
		inRange++
	}
	if want := len(idx.SearchRange(q, 10)); inRange != want {
		t.Errorf("NextWithin yielded %d, SearchRange %d", inRange, want)
	}
}

func TestSampleKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	pts := randPoints(rng, 500, 3)
	idx, err := Build(pts, Options{Method: RTree, Dim: 3})
	if err != nil {
		t.Fatal(err)
	}
	keys := idx.SampleKeys(40, 1)
	if len(keys) != 40 {
		t.Fatalf("got %d keys", len(keys))
	}
	for _, k := range keys {
		if len(k) != 3 {
			t.Fatal("sampled key has wrong dimension")
		}
		// Each sampled key must be an actual stored point.
		res := idx.SearchKNN(k, 1)
		if len(res) != 1 || res[0].Dist != 0 {
			t.Fatalf("sampled key %v is not in the index", k)
		}
	}
	if got := idx.SampleKeys(0, 1); got != nil {
		t.Error("n=0 should return nil")
	}
	if got := idx.SampleKeys(1000, 1); len(got) != 500 {
		t.Errorf("oversampling returned %d keys, want all 500", len(got))
	}
}

func TestBiteRestartsOption(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts := randPoints(rng, 1000, 3)
	for _, m := range []Method{JB, XJB} {
		idx, err := Build(pts, Options{Method: m, Dim: 3, BiteRestarts: 4, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		if err := idx.Check(); err != nil {
			t.Fatalf("%s with restarts: %v", m, err)
		}
		res := idx.SearchKNN(pts[0].Key, 5)
		if len(res) != 5 || res[0].RID != 0 || res[0].Dist != 0 {
			t.Fatalf("%s with restarts: bad search results %+v", m, res)
		}
	}
}

// Open is demand-paged: a small buffer pool serves exact queries, the pool
// counters move, and a warm repeat of the same query costs no new misses.
func TestOpenPagedColdVsWarm(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	pts := randPoints(rng, 3000, 3)
	idx, err := Build(pts, Options{Method: XJB, Dim: 3, PageSize: 2048, XJBBites: 4})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/paged.idx"
	if err := idx.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, ok := idx.BufferStats(); ok {
		t.Error("in-memory index reports buffer stats")
	}

	pool := idx.Stats().Pages / 4
	loaded, err := OpenWithOptions(path, OpenOptions{PoolPages: pool})
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()

	q := pts[42].Key
	want := idx.SearchKNN(q, 200)
	got := loaded.SearchKNN(q, 200)
	if len(got) != len(want) {
		t.Fatalf("%d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].RID != want[i].RID || got[i].Dist != want[i].Dist {
			t.Fatalf("result %d differs: %+v vs %+v", i, got[i], want[i])
		}
	}
	cold, ok := loaded.BufferStats()
	if !ok {
		t.Fatal("paged index reports no buffer stats")
	}
	if cold.Misses == 0 {
		t.Error("cold query read no pages")
	}
	if cold.Capacity != pool || cold.Resident > pool {
		t.Errorf("pool shape off: %+v", cold)
	}

	// Cold vs warm: with a pool big enough for the whole tree, the first
	// query faults its pages in and an identical repeat is served entirely
	// from memory. (The quarter-size pool above can't show this — an LRU
	// pool smaller than a repeating scan evicts each page just before its
	// reuse, the classic sequential-flooding pattern.)
	big, err := OpenWithOptions(path, OpenOptions{PoolPages: idx.Stats().Pages})
	if err != nil {
		t.Fatal(err)
	}
	defer big.Close()
	big.SearchKNN(q, 200)
	coldBig, _ := big.BufferStats()
	big.SearchKNN(q, 200)
	warmBig, _ := big.BufferStats()
	if warmBig.Misses != coldBig.Misses {
		t.Errorf("warm repeat read %d pages from disk", warmBig.Misses-coldBig.Misses)
	}
	if warmBig.Hits == coldBig.Hits {
		t.Error("warm repeat produced no pool hits")
	}
}

// A demand-paged index accepts the full mutation API; results after the
// edits match an in-memory index given the same edits.
func TestOpenPagedMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	pts := randPoints(rng, 1200, 2)
	idx, err := Build(pts, Options{Method: RTree, Dim: 2, PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/mut.idx"
	if err := idx.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := OpenWithOptions(path, OpenOptions{PoolPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()

	edit := func(x *Index) {
		t.Helper()
		for i := 0; i < 40; i++ {
			if err := x.Insert(Point{Key: []float64{float64(i), 101}, RID: int64(90000 + i)}); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 80; i++ {
			ok, err := x.Delete(pts[i].Key, pts[i].RID)
			if err != nil || !ok {
				t.Fatalf("delete %d: %v %v", i, ok, err)
			}
		}
		if err := x.Tighten(); err != nil {
			t.Fatal(err)
		}
	}
	edit(idx)
	edit(loaded)

	if err := loaded.Check(); err != nil {
		t.Fatalf("integrity: %v", err)
	}
	q := pts[500].Key
	a, b := idx.SearchKNN(q, 30), loaded.SearchKNN(q, 30)
	if len(a) != len(b) {
		t.Fatalf("%d vs %d results", len(b), len(a))
	}
	for i := range a {
		if a[i].RID != b[i].RID || a[i].Dist != b[i].Dist {
			t.Fatalf("result %d differs after mutation", i)
		}
	}
}

// Eager open keeps the old materialize-everything behavior.
func TestOpenEager(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	pts := randPoints(rng, 800, 2)
	idx, err := Build(pts, Options{Method: JB, Dim: 2, PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/eager.idx"
	if err := idx.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := OpenWithOptions(path, OpenOptions{Eager: true})
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close() // no-op for eager indexes
	if _, ok := loaded.BufferStats(); ok {
		t.Error("eager index reports buffer stats")
	}
	if loaded.Len() != idx.Len() {
		t.Errorf("len %d, want %d", loaded.Len(), idx.Len())
	}
	if err := loaded.Check(); err != nil {
		t.Fatal(err)
	}
}

// Package e2e holds the black-box chaos end-to-end suite: the real
// blobserved and blobrouted binaries, compiled in-test, booted as a sharded
// cluster (saved-pagefile shard with a replica plus online WAL-backed
// shards) on real TCP ports, driven by a seeded action sequence with real
// fault injection — kill -9 mid-save, SIGSTOP stalls, graceful restarts,
// router↔shard partitions — and checked against the in-process fault-free
// oracle for byte-identical convergence. See DESIGN.md §15.
//
// Replaying a failure needs only the recorded (seed, action index): run
// the same seed again and every action, fault and checkpoint re-occurs at
// the same index.
package e2e

import (
	"os"
	"testing"

	"blobindex/internal/chaoscluster"
)

func runChaos(t *testing.T, cfg chaoscluster.Config) *chaoscluster.Report {
	t.Helper()
	cfg.Log = t.Logf
	rep, err := chaoscluster.Run(cfg)
	if err != nil {
		t.Fatalf("chaos harness: %v", err)
	}
	for _, run := range rep.Runs {
		for _, d := range run.Divergences {
			t.Errorf("seed %d action %d: %s: %s", d.Seed, d.ActionIndex, d.Kind, d.Detail)
		}
		for _, lost := range run.AckedLost {
			t.Errorf("seed %d: acked write lost: %s", run.Seed, lost)
		}
	}
	if !rep.Pass {
		t.Fatal("chaos run failed: the cluster diverged from the fault-free oracle")
	}
	return rep
}

// assertCoverage checks the run exercised what the suite promises: at least
// one kill -9, one partition window with a heal, and one restart-rejoin.
func assertCoverage(t *testing.T, rep *chaoscluster.Report) {
	t.Helper()
	for _, run := range rep.Runs {
		kills, parts := 0, 0
		for _, f := range run.Faults {
			switch f.Kind {
			case "kill9":
				kills++
			case "partition":
				parts++
			}
			if f.HealAction <= f.OpenAction {
				t.Errorf("seed %d: fault %s on %s never healed (open %d, heal %d)",
					run.Seed, f.Kind, f.Target, f.OpenAction, f.HealAction)
			}
		}
		if kills == 0 || parts == 0 || run.Restarts == 0 {
			t.Errorf("seed %d: coverage hole: %d kill -9, %d partitions, %d restarts",
				run.Seed, kills, parts, run.Restarts)
		}
		if len(run.Checkpoints) == 0 {
			t.Errorf("seed %d: no convergence checkpoints ran", run.Seed)
		}
		if run.QueriesVerified == 0 {
			t.Errorf("seed %d: no queries were verified against the oracle", run.Seed)
		}
		if run.WritesAcked == 0 {
			t.Errorf("seed %d: no writes were acknowledged", run.Seed)
		}
	}
}

// TestChaosSmoke is the tier-1 leg: one seed, 64 actions, small corpus —
// every fault class still forced in by the generator.
func TestChaosSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("real-binary chaos e2e skipped in -short mode")
	}
	rep := runChaos(t, chaoscluster.Config{
		Seeds:   []int64{1},
		Actions: 64,
		Images:  400,
	})
	assertCoverage(t, rep)
}

// TestChaosFull is the acceptance-scale run: >= 256 actions x 2 seeds
// against the 3-shard + replica cluster. It takes minutes, so it only runs
// when CHAOSE2E_FULL=1 (the chaos-e2e CI job and `make chaose2e` set it).
func TestChaosFull(t *testing.T) {
	if testing.Short() {
		t.Skip("real-binary chaos e2e skipped in -short mode")
	}
	if os.Getenv("CHAOSE2E_FULL") == "" {
		t.Skip("full chaos run skipped; set CHAOSE2E_FULL=1 (or use `make chaose2e`)")
	}
	rep := runChaos(t, chaoscluster.Config{
		Seeds:   []int64{1, 2},
		Actions: 256,
		Images:  900,
	})
	assertCoverage(t, rep)
}

package blobindex

import (
	"context"
	"sort"

	"blobindex/internal/amdb"
	"blobindex/internal/geom"
)

// Query is one workload query for Analyze: the k nearest neighbors of
// Center.
type Query struct {
	Center []float64
	K      int
}

// ExecutionMode selects how analyzed queries execute (see the paper's §5
// and internal/amdb for details).
type ExecutionMode int

const (
	// ModeSphere (default) runs each query as one range query at its true
	// k-th-neighbor radius — the paper's analytical "expanding sphere"
	// model, with an identical sphere for every access method.
	ModeSphere ExecutionMode = iota
	// ModeBestFirst runs the exact, I/O-optimal best-first search.
	ModeBestFirst
	// ModeExpanding runs the full system behavior: probe, then expanding
	// range queries until the sphere holds k points.
	ModeExpanding
	// ModeHarvest runs the approximate "quick and dirty" candidate harvest
	// of the production Blobworld pipeline (§2.3).
	ModeHarvest
)

// AnalyzeOptions tunes the workload analysis.
type AnalyzeOptions struct {
	// TargetUtil is the target page utilization for utilization loss, in
	// (0, 1]. Default 0.8.
	TargetUtil float64
	// Mode selects query execution. Default ModeSphere.
	Mode ExecutionMode
	// SkipOptimal disables the optimal-clustering baseline (clustering
	// loss and optimal I/Os report zero), trading fidelity for speed.
	SkipOptimal bool
	// Seed drives the hypergraph partitioner computing the baseline.
	Seed int64
	// Parallelism caps the query-execution worker pool: 0 means
	// GOMAXPROCS, 1 runs sequentially. Metrics are identical for every
	// value.
	Parallelism int
}

// Analysis reports the amdb performance metrics of a workload execution:
// per-query leaf I/Os decomposed into the paper's three losses against an
// idealized tree (Table 1 of the paper).
type Analysis struct {
	Method  Method
	Queries int
	Height  int
	Pages   int
	Leaves  int

	LeafIOs  int
	InnerIOs int
	TotalIOs int

	// The loss decomposition, in leaf I/Os:
	// LeafIOs = OptimalIOs + ClusteringLoss + UtilizationLoss + ExcessCoverageLoss.
	ExcessCoverageLoss float64
	UtilizationLoss    float64
	ClusteringLoss     float64
	OptimalIOs         float64

	// AvgLeafIOsPerQuery is the mean leaf reads per query.
	AvgLeafIOsPerQuery float64
	// PagesHitFraction is the mean fraction of the index's pages one query
	// touches (the paper's "one in 50" check, §6).
	PagesHitFraction float64

	// LeafProfiles lists every leaf's workload profile, most empty-read
	// afflicted first — the per-node view amdb's GUI visualizes.
	LeafProfiles []LeafProfile
}

// LeafProfile aggregates one leaf page's accesses over the workload.
type LeafProfile struct {
	Page          int64
	Accesses      int
	EmptyAccesses int     // accesses that contributed no results
	Utilization   float64 // fill fraction of the leaf
}

// Analyze executes the workload against the index and computes the amdb
// loss metrics. The index is not modified.
func (ix *Index) Analyze(queries []Query, opts AnalyzeOptions) (*Analysis, error) {
	return ix.AnalyzeCtx(context.Background(), queries, opts)
}

// AnalyzeCtx is Analyze honoring cancellation: ctx is checked once per
// index page read, and the first context error aborts the remaining
// queries and is returned. Safe to run concurrently with searches; the
// index is not modified.
func (ix *Index) AnalyzeCtx(ctx context.Context, queries []Query, opts AnalyzeOptions) (*Analysis, error) {
	tree, err := ix.primary()
	if err != nil {
		return nil, err
	}
	qs := make([]amdb.Query, len(queries))
	for i, q := range queries {
		qs[i] = amdb.Query{Center: geom.Vector(q.Center), K: q.K}
	}
	rep, err := amdb.AnalyzeCtx(ctx, tree, qs, amdb.Config{
		TargetUtil:  opts.TargetUtil,
		Seed:        opts.Seed,
		SkipOptimal: opts.SkipOptimal,
		Mode:        amdb.SearchMode(opts.Mode),
		Parallelism: opts.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	profiles := make([]LeafProfile, 0, len(rep.Nodes))
	for pid, np := range rep.Nodes {
		profiles = append(profiles, LeafProfile{
			Page:          int64(pid),
			Accesses:      np.Accesses,
			EmptyAccesses: np.EmptyAccesses,
			Utilization:   np.Utilization,
		})
	}
	sort.Slice(profiles, func(i, j int) bool {
		if profiles[i].EmptyAccesses != profiles[j].EmptyAccesses {
			return profiles[i].EmptyAccesses > profiles[j].EmptyAccesses
		}
		return profiles[i].Page < profiles[j].Page
	})
	return &Analysis{
		Method:             ix.opts.Method,
		Queries:            rep.Totals.Queries,
		Height:             rep.TreeHeight,
		Pages:              rep.NumPages,
		Leaves:             rep.NumLeaves,
		LeafIOs:            rep.Totals.LeafIOs,
		InnerIOs:           rep.Totals.InnerIOs,
		TotalIOs:           rep.Totals.TotalIOs(),
		ExcessCoverageLoss: rep.Totals.ExcessLoss,
		UtilizationLoss:    rep.Totals.UtilLoss,
		ClusteringLoss:     rep.Totals.ClusterLoss,
		OptimalIOs:         rep.Totals.OptimalIOs,
		AvgLeafIOsPerQuery: rep.AvgLeafIOsPerQuery(),
		PagesHitFraction:   rep.PagesHitFraction(),
		LeafProfiles:       profiles,
	}, nil
}

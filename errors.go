package blobindex

import (
	"errors"

	"blobindex/internal/pagefile"
)

// Sentinel errors returned by the facade. They are wrapped with situational
// detail, so match them with errors.Is rather than equality.
var (
	// ErrDimMismatch reports a key or query whose dimensionality differs
	// from the index's Options.Dim. Returned by Build, Insert, Delete and
	// the context-aware search APIs.
	ErrDimMismatch = errors.New("blobindex: key dimension mismatch")

	// ErrEmptyIndex reports a context-aware or batch search against an
	// index holding no points. The legacy search methods keep returning an
	// empty result set instead.
	ErrEmptyIndex = errors.New("blobindex: index holds no points")

	// ErrInvalidOptions reports malformed Options. Returned by New, Build
	// and Options.Validate.
	ErrInvalidOptions = errors.New("blobindex: invalid options")

	// ErrInvalidSearchRequest reports a malformed SearchRequest — K and
	// Radius both set (or neither), refine parameters on a non-refining
	// request, and similar shape violations. Returned by
	// SearchRequest.Validate and the Search entry points.
	ErrInvalidSearchRequest = errors.New("blobindex: invalid search request")

	// ErrInvalidRecallTarget reports a SearchRequest.TargetRecall outside
	// (0, 1]. It is a refinement of ErrInvalidSearchRequest for the one
	// field that is a calibrated knob rather than a structural choice.
	ErrInvalidRecallTarget = errors.New("blobindex: recall target outside (0, 1]")

	// ErrNoRefineStore reports a Refine request against an index with no
	// full-feature side store attached (AttachRefine).
	ErrNoRefineStore = errors.New("blobindex: no refine store attached")

	// ErrMultiSegment reports a single-tree operation (Analyze, WriteSVG,
	// a direct Save) against an index currently holding more than one live
	// segment or live tombstones. Run CompactAll first to merge the index
	// back to one segment.
	ErrMultiSegment = errors.New("blobindex: index holds multiple segments")

	// ErrNotOnline reports an online-ingest operation (SealActive,
	// CompactAll, IngestStats consumers) against a legacy index that was
	// not opened with CreateOnline/OpenOnline.
	ErrNotOnline = errors.New("blobindex: index is not online")
)

// Storage failure classes surfaced by demand-paged indexes (Open). Searches
// and writes over a paged index can fail mid-traversal when a page read
// fails; serving layers branch on the class — a transient failure is worth
// the client retrying (503 + Retry-After), while corruption is not (500).
var (
	// ErrStorageTransient marks a search or write that failed on a
	// transient page read even after the store's bounded in-process
	// retries. The same request may well succeed if reissued.
	ErrStorageTransient = pagefile.ErrTransient

	// ErrStorageCorrupt marks a search or write that read a page whose
	// checksum did not match its contents — the on-disk index is damaged
	// and retrying cannot help.
	ErrStorageCorrupt = pagefile.ErrChecksum
)

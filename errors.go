package blobindex

import "errors"

// Sentinel errors returned by the facade. They are wrapped with situational
// detail, so match them with errors.Is rather than equality.
var (
	// ErrDimMismatch reports a key or query whose dimensionality differs
	// from the index's Options.Dim. Returned by Build, Insert, Delete and
	// the context-aware search APIs.
	ErrDimMismatch = errors.New("blobindex: key dimension mismatch")

	// ErrEmptyIndex reports a context-aware or batch search against an
	// index holding no points. The legacy search methods keep returning an
	// empty result set instead.
	ErrEmptyIndex = errors.New("blobindex: index holds no points")

	// ErrInvalidOptions reports malformed Options. Returned by New, Build
	// and Options.Validate.
	ErrInvalidOptions = errors.New("blobindex: invalid options")
)

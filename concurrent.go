package blobindex

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"blobindex/internal/geom"
	"blobindex/internal/nn"
)

// SearchKNNCtx is SearchKNN with explicit failure modes and cancellation:
// it returns ErrDimMismatch for a query of the wrong dimensionality,
// ErrEmptyIndex when the index holds no points, and ctx's error if ctx is
// done — checked once per index page read, so cancellation lands
// mid-traversal. Safe for any number of concurrent callers alongside a
// single writer.
func (ix *Index) SearchKNNCtx(ctx context.Context, q []float64, k int) ([]Neighbor, error) {
	if len(q) != ix.opts.Dim {
		return nil, fmt.Errorf("%w: query dimension %d, index dimension %d",
			ErrDimMismatch, len(q), ix.opts.Dim)
	}
	if ix.tree.Len() == 0 {
		return nil, ErrEmptyIndex
	}
	res, err := nn.SearchCtx(ctx, ix.tree, geom.Vector(q), k, nil)
	if err != nil {
		return nil, err
	}
	return toNeighbors(res), nil
}

// SearchRangeCtx is SearchRange with the same failure modes and
// cancellation behavior as SearchKNNCtx.
func (ix *Index) SearchRangeCtx(ctx context.Context, q []float64, radius float64) ([]Neighbor, error) {
	if len(q) != ix.opts.Dim {
		return nil, fmt.Errorf("%w: query dimension %d, index dimension %d",
			ErrDimMismatch, len(q), ix.opts.Dim)
	}
	if ix.tree.Len() == 0 {
		return nil, ErrEmptyIndex
	}
	res, err := nn.RangeCtx(ctx, ix.tree, geom.Vector(q), radius*radius, nil)
	if err != nil {
		return nil, err
	}
	return toNeighbors(res), nil
}

// BatchSearchKNN answers one exact k-NN query per element of queries,
// fanning the workload out across a pool of parallelism worker goroutines
// (0 uses Options.Parallelism, and GOMAXPROCS if that is also zero). This
// is the replay fast path for workloads like the paper's 5,531-query
// evaluation set.
//
// The execution is deterministic: results[i] always holds query i's
// neighbors, nearest first, exactly as a sequential loop of SearchKNN
// calls would produce them — parallelism changes only which worker runs
// each query. All queries are validated up front (ErrDimMismatch names the
// first offender), an empty index returns ErrEmptyIndex, and the first
// context error cancels the remaining queries mid-traversal.
func (ix *Index) BatchSearchKNN(ctx context.Context, queries [][]float64, k int, parallelism int) ([][]Neighbor, error) {
	for i, q := range queries {
		if len(q) != ix.opts.Dim {
			return nil, fmt.Errorf("%w: query %d has dimension %d, index dimension %d",
				ErrDimMismatch, i, len(q), ix.opts.Dim)
		}
	}
	if ix.tree.Len() == 0 {
		return nil, ErrEmptyIndex
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if parallelism <= 0 {
		parallelism = ix.opts.Parallelism
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(queries) {
		parallelism = len(queries)
	}
	if parallelism < 1 {
		parallelism = 1
	}

	out := make([][]Neighbor, len(queries))
	jobs := make(chan int, len(queries))
	for i := range queries {
		jobs <- i
	}
	close(jobs)
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if ctx.Err() != nil {
					return
				}
				res, err := nn.SearchCtx(ctx, ix.tree, geom.Vector(queries[i]), k, nil)
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
				out[i] = toNeighbors(res)
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

package blobindex

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"blobindex/internal/nn"
)

// nnBufPool recycles the intermediate nn.Result buffers behind the facade's
// search pipeline, so converting index results to Neighbors costs no
// steady-state allocation.
var nnBufPool = sync.Pool{New: func() any { return new([]nn.Result) }}

func getNNBuf() *[]nn.Result { return nnBufPool.Get().(*[]nn.Result) }

// putNNBuf zeroes the buffer's used prefix before pooling it, so a pooled
// buffer never pins tree-owned key slices between queries.
func putNNBuf(buf *[]nn.Result) {
	s := *buf
	for i := range s {
		s[i] = nn.Result{}
	}
	*buf = s[:0]
	nnBufPool.Put(buf)
}

// appendNeighbors converts index results onto the end of dst.
func appendNeighbors(dst []Neighbor, res []nn.Result) []Neighbor {
	for _, r := range res {
		dst = append(dst, Neighbor{RID: r.RID, Key: r.Key, Dist: math.Sqrt(r.Dist2), Dist2: r.Dist2})
	}
	return dst
}

// SearchKNNCtx is SearchKNN with explicit failure modes and cancellation; it
// is a thin wrapper over Search.
//
// Deprecated: use Search(ctx, SearchRequest{Query: q, K: k}) — the unified
// request path, which adds per-stage accounting and the refine tier. One
// behavioral difference: a non-positive k, which formerly returned an empty
// result set, now reports ErrInvalidSearchRequest.
func (ix *Index) SearchKNNCtx(ctx context.Context, q []float64, k int) ([]Neighbor, error) {
	resp, err := ix.Search(ctx, SearchRequest{Query: q, K: k})
	if err != nil {
		return nil, err
	}
	return resp.Neighbors, nil
}

// SearchKNNInto is SearchKNNCtx appending the neighbors to dst and returning
// the extended slice. On error dst is returned truncated to its original
// length.
//
// Deprecated: use SearchInto(ctx, SearchRequest{Query: q, K: k}, dst), which
// has the same allocation contract (a caller-reused dst makes the
// steady-state query path allocation-free).
func (ix *Index) SearchKNNInto(ctx context.Context, q []float64, k int, dst []Neighbor) ([]Neighbor, error) {
	resp, err := ix.SearchInto(ctx, SearchRequest{Query: q, K: k}, dst)
	if err != nil {
		return dst, err
	}
	return resp.Neighbors, nil
}

// SearchRangeCtx is SearchRange with the same failure modes and
// cancellation behavior as SearchKNNCtx.
//
// Deprecated: use Search(ctx, SearchRequest{Query: q, Radius: radius}). One
// behavioral difference: a non-positive radius, which formerly searched a
// zero-radius ball, now reports ErrInvalidSearchRequest.
func (ix *Index) SearchRangeCtx(ctx context.Context, q []float64, radius float64) ([]Neighbor, error) {
	resp, err := ix.Search(ctx, SearchRequest{Query: q, Radius: radius})
	if err != nil {
		return nil, err
	}
	return resp.Neighbors, nil
}

// SearchRangeInto is SearchRangeCtx appending the neighbors to dst and
// returning the extended slice. On error dst is returned truncated to its
// original length.
//
// Deprecated: use SearchInto(ctx, SearchRequest{Query: q, Radius: radius},
// dst); see SearchKNNInto for the allocation contract.
func (ix *Index) SearchRangeInto(ctx context.Context, q []float64, radius float64, dst []Neighbor) ([]Neighbor, error) {
	resp, err := ix.SearchInto(ctx, SearchRequest{Query: q, Radius: radius}, dst)
	if err != nil {
		return dst, err
	}
	return resp.Neighbors, nil
}

// BatchSearchKNN answers one exact k-NN query per element of queries,
// fanning the workload out across a pool of parallelism worker goroutines
// (0 uses Options.Parallelism, and GOMAXPROCS if that is also zero). This
// is the replay fast path for workloads like the paper's 5,531-query
// evaluation set. Each query runs through the unified Search pipeline.
//
// The execution is deterministic: results[i] always holds query i's
// neighbors, nearest first, exactly as a sequential loop of SearchKNN
// calls would produce them — parallelism changes only which worker runs
// each query. All queries are validated up front (ErrDimMismatch names the
// first offender), an empty index returns ErrEmptyIndex, and the first
// context error cancels the remaining queries mid-traversal.
func (ix *Index) BatchSearchKNN(ctx context.Context, queries [][]float64, k int, parallelism int) ([][]Neighbor, error) {
	for i, q := range queries {
		if len(q) != ix.opts.Dim {
			return nil, fmt.Errorf("%w: query %d has dimension %d, index dimension %d",
				ErrDimMismatch, i, len(q), ix.opts.Dim)
		}
	}
	if ix.stack.Len() == 0 {
		return nil, ErrEmptyIndex
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if parallelism <= 0 {
		parallelism = ix.opts.Parallelism
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(queries) {
		parallelism = len(queries)
	}
	if parallelism < 1 {
		parallelism = 1
	}

	out := make([][]Neighbor, len(queries))
	jobs := make(chan int, len(queries))
	for i := range queries {
		jobs <- i
	}
	close(jobs)
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				// Cancellation is checked between slots, not only inside the
				// page traversal: a worker whose next query would start after
				// the context died exits immediately — even when individual
				// searches are too fast to ever observe the cancellation
				// mid-traversal.
				if err := ctx.Err(); err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
				resp, err := ix.Search(ctx, SearchRequest{Query: queries[i], K: k})
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
				out[i] = resp.Neighbors
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

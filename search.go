package blobindex

import (
	"context"
	"fmt"
	"math"
	"slices"
	"sync"
	"time"

	"blobindex/internal/blobworld"
	"blobindex/internal/geom"
	"blobindex/internal/nn"
)

// SearchRequest is the one request shape behind every facade search: plain
// k-NN and range queries in index space, and the filter-and-refine tier that
// re-ranks index candidates with the full-dimensionality quadratic-form
// distance (paper §2.2's exact pipeline, served from the index's sidecar).
//
// Exactly one of K and Radius selects the query type. With Refine unset,
// Query is an index-space vector (Options.Dim coordinates) and results carry
// Euclidean distances — bit-identical to the pre-request-API SearchKNN and
// SearchRange. With Refine set, Query is a full feature vector (RefineDim
// coordinates, 218 for Blobworld); the index projects it through the
// sidecar's stored SVD reduction for the filter stage and re-ranks the
// candidates by exact quadratic-form distance.
type SearchRequest struct {
	// Query is the query vector: index-space (Options.Dim) normally,
	// full-dimensionality (RefineDim) when Refine is set.
	Query []float64

	// K requests the K nearest neighbors. Mutually exclusive with Radius.
	K int

	// Radius requests all points within the given Euclidean distance in
	// index space. Mutually exclusive with K.
	Radius float64

	// TargetRecall selects the refine tier's candidate multiplier from the
	// offline calibration (blobbench "recall"): the smallest multiplier
	// whose measured recall@200 reached the target. Valid only on refining
	// k-NN requests; 0 means DefaultTargetRecall. Mutually exclusive with
	// Multiplier.
	TargetRecall float64

	// Multiplier overrides the calibrated candidate multiplier directly:
	// the filter stage fetches K × Multiplier candidates. Valid only on
	// refining k-NN requests; 0 means derive it from TargetRecall.
	Multiplier int

	// Refine enables the second stage: candidates from the index are
	// re-ranked by the full-dimensionality quadratic-form distance read
	// from the attached side store (AttachRefine), and the response's
	// distances are exact full-space distances.
	Refine bool
}

// DefaultTargetRecall is the recall target a refining request gets when it
// sets neither TargetRecall nor Multiplier.
const DefaultTargetRecall = 0.99

// refineLadder maps recall targets to the smallest candidate multiplier
// whose measured recall@200 reached the target in the offline calibration
// sweep (blobbench "recall" at the 8000-image/48k-blob artifact scale,
// committed as RECALL_PR6.json: 0.90 -> x3 measured 0.922, 0.95 -> x6
// measured 0.963, 0.99 -> x12 measured 1.000). The 1.00 rung adds headroom
// above the smallest multiplier that measured perfect recall, since measured
// recall on the calibration workload is not a guarantee. Targets between
// rungs round up to the next rung; targets above the top rung clamp to the
// top multiplier.
var refineLadder = []struct {
	Recall     float64
	Multiplier int
}{
	{0.90, 3},
	{0.95, 6},
	{0.99, 12},
	{1.00, 16},
}

// MultiplierForRecall returns the calibrated candidate multiplier for a
// recall target — the ladder rung a refining SearchRequest with the given
// TargetRecall would use.
func MultiplierForRecall(target float64) int {
	for _, rung := range refineLadder {
		if rung.Recall >= target {
			return rung.Multiplier
		}
	}
	return refineLadder[len(refineLadder)-1].Multiplier
}

// Validate reports whether the request is well-formed, mirroring
// Options.Validate: every violation wraps ErrInvalidSearchRequest (and
// additionally ErrInvalidRecallTarget for an out-of-range TargetRecall) for
// errors.Is matching. Query dimensionality is checked by Search itself,
// which knows the index's dimensions.
func (r SearchRequest) Validate() error {
	if r.K < 0 {
		return fmt.Errorf("%w: K must not be negative, got %d", ErrInvalidSearchRequest, r.K)
	}
	if r.Radius < 0 || math.IsNaN(r.Radius) {
		return fmt.Errorf("%w: Radius must not be negative, got %v", ErrInvalidSearchRequest, r.Radius)
	}
	if r.K == 0 && r.Radius == 0 {
		return fmt.Errorf("%w: one of K or Radius is required", ErrInvalidSearchRequest)
	}
	if r.K > 0 && r.Radius > 0 {
		return fmt.Errorf("%w: K and Radius are mutually exclusive", ErrInvalidSearchRequest)
	}
	if r.TargetRecall != 0 {
		if !r.Refine {
			return fmt.Errorf("%w: TargetRecall requires Refine", ErrInvalidSearchRequest)
		}
		if r.K == 0 {
			return fmt.Errorf("%w: TargetRecall applies to k-NN requests only", ErrInvalidSearchRequest)
		}
		if math.IsNaN(r.TargetRecall) || r.TargetRecall < 0 || r.TargetRecall > 1 {
			return fmt.Errorf("%w: %w: got %v", ErrInvalidSearchRequest, ErrInvalidRecallTarget, r.TargetRecall)
		}
		if r.Multiplier != 0 {
			return fmt.Errorf("%w: TargetRecall and Multiplier are mutually exclusive", ErrInvalidSearchRequest)
		}
	}
	if r.Multiplier != 0 {
		if r.Multiplier < 1 {
			return fmt.Errorf("%w: Multiplier must be positive, got %d", ErrInvalidSearchRequest, r.Multiplier)
		}
		if !r.Refine {
			return fmt.Errorf("%w: Multiplier requires Refine", ErrInvalidSearchRequest)
		}
		if r.K == 0 {
			return fmt.Errorf("%w: Multiplier applies to k-NN requests only", ErrInvalidSearchRequest)
		}
	}
	return nil
}

// StageStats describes one pipeline stage of a served search.
type StageStats struct {
	// Candidates is the number of candidates the stage handled: results the
	// filter stage produced, full features the refine stage scored.
	Candidates int
	// Duration is the stage's wall-clock time.
	Duration time.Duration
}

// SearchResponse carries a search's results and its per-stage accounting.
type SearchResponse struct {
	// Neighbors holds the results, nearest first. On a refined request the
	// distances are full-space quadratic-form distances; otherwise they are
	// index-space Euclidean distances.
	Neighbors []Neighbor

	// Filter describes the candidate-generation stage over the index.
	Filter StageStats

	// Refine describes the full-distance re-ranking stage; zero when the
	// request did not refine.
	Refine StageStats

	// Multiplier is the effective candidate multiplier the filter stage
	// used (1 for non-refining requests).
	Multiplier int

	// Refined reports whether the refine stage ran.
	Refined bool
}

// refineScratch is the pooled per-search scratch of the refine path: the
// projected query and the feature read buffer, reused so a steady-state
// refined search allocates nothing.
type refineScratch struct {
	proj []float64
	feat []float64
}

var refineScratchPool = sync.Pool{New: func() any { return new(refineScratch) }}

// Search answers one SearchRequest. It is the single pipeline every facade
// search funnels through: the request is validated (ErrInvalidSearchRequest,
// ErrInvalidRecallTarget), the query's dimensionality is checked before any
// traversal (ErrDimMismatch), an empty index returns ErrEmptyIndex, and ctx
// cancels mid-traversal. A refining request against an index with no side
// store returns ErrNoRefineStore. Safe for any number of concurrent callers
// alongside a single writer.
func (ix *Index) Search(ctx context.Context, req SearchRequest) (SearchResponse, error) {
	return ix.SearchInto(ctx, req, nil)
}

// SearchInto is Search appending the neighbors to dst: with a caller-reused
// dst the steady-state pipeline — validation, projection, traversal, refine
// re-ranking, result conversion — allocates nothing. On error the response's
// Neighbors is dst truncated to its original length; stage stats for stages
// that ran are still filled in.
func (ix *Index) SearchInto(ctx context.Context, req SearchRequest, dst []Neighbor) (SearchResponse, error) {
	resp := SearchResponse{Neighbors: dst}
	if err := req.Validate(); err != nil {
		return resp, err
	}
	if ctx == nil {
		ctx = context.Background()
	}

	// Resolve the query into index space. A refined request carries the
	// full-dimensionality vector and is projected through the sidecar's
	// stored reduction; the projection reproduces the build-time reduction
	// bit for bit, so the filter stage sees exactly the indexed geometry.
	query := req.Query
	var sc *refineScratch
	if req.Refine {
		if ix.side == nil {
			return resp, ErrNoRefineStore
		}
		if len(req.Query) != ix.side.FullDim() {
			return resp, fmt.Errorf("%w: query dimension %d, refine store dimension %d",
				ErrDimMismatch, len(req.Query), ix.side.FullDim())
		}
		sc = refineScratchPool.Get().(*refineScratch)
		defer refineScratchPool.Put(sc)
		sc.proj = ix.side.Project(req.Query, sc.proj[:0])
		query = sc.proj
	}
	if len(query) != ix.opts.Dim {
		return resp, fmt.Errorf("%w: query dimension %d, index dimension %d",
			ErrDimMismatch, len(query), ix.opts.Dim)
	}
	if ix.stack.Len() == 0 {
		return resp, ErrEmptyIndex
	}

	// Filter stage: candidate generation in index space. A refining k-NN
	// request over-fetches by the calibrated multiplier so the exact re-rank
	// has enough candidates to recover full-space neighbors the reduced
	// geometry mis-ordered.
	resp.Multiplier = 1
	fetch := req.K
	if req.Refine && req.K > 0 {
		resp.Multiplier = req.Multiplier
		if resp.Multiplier == 0 {
			target := req.TargetRecall
			if target == 0 {
				target = DefaultTargetRecall
			}
			resp.Multiplier = MultiplierForRecall(target)
		}
		fetch = req.K * resp.Multiplier
	}

	// The filter stage fans out over the index's live segments and merges
	// by (Dist2, RID); a single-segment index takes the stack's fast path,
	// which is the exact pre-segmentation one-tree traversal.
	buf := getNNBuf()
	defer putNNBuf(buf)
	start := time.Now()
	var (
		res []nn.Result
		err error
	)
	if req.K > 0 {
		res, err = ix.stack.SearchKNN(ctx, geom.Vector(query), fetch, (*buf)[:0])
	} else {
		res, err = ix.stack.SearchRange(ctx, geom.Vector(query), req.Radius*req.Radius, (*buf)[:0])
	}
	*buf = res
	resp.Filter = StageStats{Candidates: len(res), Duration: time.Since(start)}
	if err != nil {
		return resp, err
	}

	// Refine stage: score every candidate with the exact quadratic-form
	// distance over its stored full feature, re-rank, and keep the top K.
	// Range requests keep their index-space membership but report exact
	// distances in exact order.
	if req.Refine {
		start = time.Now()
		scored := len(res)
		// Score in RID order: sidecar records are RID-sorted, so the feature
		// reads walk the side pagefile sequentially (each side page faulted
		// once) instead of hopping pages in candidate-rank order. Harmless to
		// the response — the full-space sort below re-ranks from scratch and
		// its (Dist2, RID) key is a total order.
		slices.SortFunc(res, func(a, b nn.Result) int {
			switch {
			case a.RID < b.RID:
				return -1
			case a.RID > b.RID:
				return 1
			}
			return 0
		})
		for i := range res {
			sc.feat, err = ix.side.Feature(res[i].RID, sc.feat[:0])
			if err != nil {
				return resp, fmt.Errorf("refine candidate %d: %w", res[i].RID, err)
			}
			res[i].Dist2 = blobworld.QFDist2(req.Query, sc.feat)
		}
		slices.SortFunc(res, func(a, b nn.Result) int {
			switch {
			case a.Dist2 < b.Dist2:
				return -1
			case a.Dist2 > b.Dist2:
				return 1
			case a.RID < b.RID:
				return -1
			case a.RID > b.RID:
				return 1
			}
			return 0
		})
		if req.K > 0 && len(res) > req.K {
			res = res[:req.K]
		}
		resp.Refine = StageStats{Candidates: scored, Duration: time.Since(start)}
		resp.Refined = true
	}
	resp.Neighbors = appendNeighbors(dst, res)
	return resp, nil
}

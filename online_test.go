package blobindex

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"blobindex/internal/wal"
)

func onlineTestOptions() Options {
	return Options{Method: RTree, Dim: 3, PageSize: 2048}
}

func randKey(rng *rand.Rand, dim int) []float64 {
	k := make([]float64, dim)
	for i := range k {
		k[i] = rng.Float64()
	}
	return k
}

// knnRIDs runs one exact k-NN query and returns the result RIDs in order.
func knnRIDs(t *testing.T, ix *Index, q []float64, k int) []int64 {
	t.Helper()
	resp, err := ix.Search(context.Background(), SearchRequest{Query: q, K: k})
	if err != nil {
		t.Fatalf("search: %v", err)
	}
	rids := make([]int64, len(resp.Neighbors))
	for i, nb := range resp.Neighbors {
		rids[i] = nb.RID
	}
	return rids
}

// assertSameResults compares got's k-NN answers against a fault-free oracle
// index over the same live point set, over a deterministic query workload.
func assertSameResults(t *testing.T, oracle, got *Index, seed int64) {
	t.Helper()
	if o, g := oracle.Len(), got.Len(); o != g {
		t.Fatalf("Len: oracle %d, got %d", o, g)
	}
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < 20; trial++ {
		q := randKey(rng, oracle.opts.Dim)
		want, err := oracle.Search(context.Background(), SearchRequest{Query: q, K: 25})
		if err != nil {
			t.Fatalf("oracle search: %v", err)
		}
		have, err := got.Search(context.Background(), SearchRequest{Query: q, K: 25})
		if err != nil {
			t.Fatalf("recovered search: %v", err)
		}
		if len(want.Neighbors) != len(have.Neighbors) {
			t.Fatalf("trial %d: %d results, want %d", trial, len(have.Neighbors), len(want.Neighbors))
		}
		for i := range want.Neighbors {
			w, h := want.Neighbors[i], have.Neighbors[i]
			if w.RID != h.RID || w.Dist != h.Dist {
				t.Fatalf("trial %d result %d: got (rid %d, dist %v), want (rid %d, dist %v)",
					trial, i, h.RID, h.Dist, w.RID, w.Dist)
			}
		}
	}
}

// oracleOver bulk-builds a fault-free reference index over the live set.
func oracleOver(t *testing.T, live map[int64][]float64) *Index {
	t.Helper()
	pts := make([]Point, 0, len(live))
	for rid, key := range live {
		pts = append(pts, Point{Key: key, RID: rid})
	}
	ix, err := Build(pts, onlineTestOptions())
	if err != nil {
		t.Fatalf("oracle build: %v", err)
	}
	return ix
}

// cloneDir copies every regular file of src into a fresh directory — the
// on-disk state a kill -9 at this instant would leave behind (the WAL is
// fsynced at every acknowledgement, so disk state == acknowledged state).
func cloneDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

func TestOnlineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ix, err := CreateOnline(dir, onlineTestOptions(), OnlineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	live := make(map[int64][]float64)
	for rid := int64(0); rid < 500; rid++ {
		key := randKey(rng, 3)
		if err := ix.Insert(Point{Key: key, RID: rid}); err != nil {
			t.Fatalf("insert %d: %v", rid, err)
		}
		live[rid] = key
	}
	// Delete a slice of the keyspace while everything is still in memory.
	for rid := int64(0); rid < 50; rid++ {
		ok, err := ix.Delete(live[rid], rid)
		if err != nil || !ok {
			t.Fatalf("delete %d: ok=%v err=%v", rid, ok, err)
		}
		delete(live, rid)
	}

	oracle := oracleOver(t, live)
	defer oracle.Close()
	assertSameResults(t, oracle, ix, 42)

	// Seal + compact: same answers from the pagefile segment.
	if err := ix.SealActive(); err != nil {
		t.Fatal(err)
	}
	if err := ix.CompactPending(); err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, oracle, ix, 43)

	// Deletes against the sealed segment go through tombstones.
	for rid := int64(50); rid < 80; rid++ {
		ok, err := ix.Delete(live[rid], rid)
		if err != nil || !ok {
			t.Fatalf("tombstone delete %d: ok=%v err=%v", rid, ok, err)
		}
		delete(live, rid)
	}
	// A deleted RID absent everywhere acknowledges false.
	if ok, err := ix.Delete(randKey(rng, 3), 99999); err != nil || ok {
		t.Fatalf("absent delete: ok=%v err=%v", ok, err)
	}
	oracle2 := oracleOver(t, live)
	defer oracle2.Close()
	assertSameResults(t, oracle2, ix, 44)

	st, ok := ix.IngestStats()
	if !ok {
		t.Fatal("IngestStats: not online")
	}
	if st.FileSegments != 1 || st.Tombstones != 30 {
		t.Fatalf("stats: %+v", st)
	}

	// Full compaction applies the tombstones physically and clears them.
	if err := ix.CompactAll(); err != nil {
		t.Fatal(err)
	}
	if st, _ := ix.IngestStats(); st.Tombstones != 0 || st.PendingSegments != 0 {
		t.Fatalf("post-compact stats: %+v", st)
	}
	assertSameResults(t, oracle2, ix, 45)

	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the compacted state round-trips through the manifest.
	ix2, err := OpenOnline(dir, OnlineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ix2.Close()
	assertSameResults(t, oracle2, ix2, 46)
}

// TestOnlineCrashRecovery snapshots the directory at seeded points of an
// ingest — mid-memory, post-seal, with tombstones pending — and asserts a
// reopen of each snapshot serves results byte-identical to a fault-free
// oracle over exactly the writes acknowledged before the snapshot. The WAL
// fsyncs on every acknowledgement, so a directory snapshot is the kill -9
// disk image.
func TestOnlineCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	ix, err := CreateOnline(dir, onlineTestOptions(), OnlineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	rng := rand.New(rand.NewSource(7))
	live := make(map[int64][]float64)
	insert := func(rid int64) {
		key := randKey(rng, 3)
		if err := ix.Insert(Point{Key: key, RID: rid}); err != nil {
			t.Fatalf("insert %d: %v", rid, err)
		}
		live[rid] = key
	}
	remove := func(rid int64) {
		if ok, err := ix.Delete(live[rid], rid); err != nil || !ok {
			t.Fatalf("delete %d: ok=%v err=%v", rid, ok, err)
		}
		delete(live, rid)
	}

	for rid := int64(0); rid < 300; rid++ {
		insert(rid)
	}
	for rid := int64(0); rid < 20; rid++ {
		remove(rid)
	}

	// Crash point A: everything still in the first WAL, nothing sealed.
	crashA := cloneDir(t, dir)
	liveA := oracleOver(t, live)
	defer liveA.Close()

	if err := ix.SealActive(); err != nil {
		t.Fatal(err)
	}

	// Crash point B: sealed but not compacted — two WALs listed, no
	// segment file yet.
	crashB := cloneDir(t, dir)

	if err := ix.CompactPending(); err != nil {
		t.Fatal(err)
	}
	for rid := int64(300); rid < 400; rid++ {
		insert(rid)
	}
	for rid := int64(20); rid < 40; rid++ {
		remove(rid) // tombstones against the compacted segment
	}
	remove(350) // and a plain memory-segment delete

	// Crash point C: file segment + live WAL holding inserts and deletes.
	crashC := cloneDir(t, dir)
	liveC := oracleOver(t, live)
	defer liveC.Close()

	// Writes after the snapshot must NOT appear in the recovered indexes.
	for rid := int64(1000); rid < 1050; rid++ {
		insert(rid)
	}

	for name, tc := range map[string]struct {
		dir    string
		oracle *Index
	}{
		"mid-memory": {crashA, liveA},
		"post-seal":  {crashB, liveA},
		"tombstones": {crashC, liveC},
	} {
		rec, err := OpenOnline(tc.dir, OnlineOptions{})
		if err != nil {
			t.Fatalf("%s: reopen: %v", name, err)
		}
		assertSameResults(t, tc.oracle, rec, 99)
		// The recovered index keeps ingesting.
		if err := rec.Insert(Point{Key: []float64{0.5, 0.5, 0.5}, RID: 777777}); err != nil {
			t.Fatalf("%s: post-recovery insert: %v", name, err)
		}
		if err := rec.Close(); err != nil {
			t.Fatalf("%s: close: %v", name, err)
		}
	}
}

// TestOnlineTornTailAndJanitor damages a crash snapshot the way a real
// mid-write kill does — a torn frame at the WAL tail, a stray compaction
// temp file, an unreferenced segment file — and asserts recovery truncates
// and sweeps them while serving exactly the acknowledged writes.
func TestOnlineTornTailAndJanitor(t *testing.T) {
	dir := t.TempDir()
	ix, err := CreateOnline(dir, onlineTestOptions(), OnlineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	rng := rand.New(rand.NewSource(11))
	live := make(map[int64][]float64)
	for rid := int64(0); rid < 250; rid++ {
		key := randKey(rng, 3)
		if err := ix.Insert(Point{Key: key, RID: rid}); err != nil {
			t.Fatal(err)
		}
		live[rid] = key
	}
	crash := cloneDir(t, dir)
	oracle := oracleOver(t, live)
	defer oracle.Close()

	// One more insert whose WAL frame is then torn mid-write: it was never
	// acknowledged, so recovery must serve the state without it.
	if err := ix.Insert(Point{Key: randKey(rng, 3), RID: 900}); err != nil {
		t.Fatal(err)
	}
	torn := cloneDir(t, dir)
	walPath := filepath.Join(torn, wal.FileName(1))
	fi, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walPath, fi.Size()-5); err != nil {
		t.Fatal(err)
	}
	// Debris a crashed compaction leaves: a temp file and a segment file
	// the manifest does not list.
	for _, junk := range []string{"manifest.blob.tmp", "seg-000009.idx"} {
		if err := os.WriteFile(filepath.Join(torn, junk), []byte("partial garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	for name, d := range map[string]string{"clean": crash, "torn": torn} {
		rec, err := OpenOnline(d, OnlineOptions{})
		if err != nil {
			t.Fatalf("%s: reopen: %v", name, err)
		}
		assertSameResults(t, oracle, rec, 13)
		st, _ := rec.IngestStats()
		if name == "torn" && st.TornBytes == 0 {
			t.Fatal("torn tail not detected")
		}
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
	}
	for _, junk := range []string{"manifest.blob.tmp", "seg-000009.idx"} {
		if _, err := os.Stat(filepath.Join(torn, junk)); !os.IsNotExist(err) {
			t.Fatalf("janitor left %s behind (err=%v)", junk, err)
		}
	}
}

// TestOnlineConcurrentIngest runs WAL writers against k-NN and range
// readers across live seal/compact cycles (run under -race by make race /
// CI). Readers assert prefix-consistency: every result RID was acknowledged
// by a writer before the query returned, with no duplicates within one
// result set.
func TestOnlineConcurrentIngest(t *testing.T) {
	dir := t.TempDir()
	ix, err := CreateOnline(dir, onlineTestOptions(), OnlineOptions{SealThreshold: 150})
	if err != nil {
		t.Fatal(err)
	}

	const writers = 4
	const perWriter = 250
	var acked sync.Map // rid -> key, set just before the write can become visible
	var writeWG, readWG sync.WaitGroup
	done := make(chan struct{})

	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < perWriter; i++ {
				rid := int64(w*10000 + i)
				key := randKey(rng, 3)
				// Mark before inserting: a reader may observe the write
				// the instant Insert applies it, before Insert returns.
				acked.Store(rid, key)
				if err := ix.Insert(Point{Key: key, RID: rid}); err != nil {
					t.Errorf("insert %d: %v", rid, err)
					return
				}
				if i%10 == 9 {
					// Delete an earlier write of this writer; readers only
					// check positives, so no un-mark is needed.
					victim := int64(w*10000 + i - 5)
					v, _ := acked.Load(victim)
					if _, err := ix.Delete(v.([]float64), victim); err != nil {
						t.Errorf("delete %d: %v", victim, err)
						return
					}
				}
			}
		}(w)
	}

	for r := 0; r < 2; r++ {
		readWG.Add(1)
		go func(r int) {
			defer readWG.Done()
			rng := rand.New(rand.NewSource(int64(200 + r)))
			for {
				select {
				case <-done:
					return
				default:
				}
				q := randKey(rng, 3)
				var nbs []Neighbor
				if r == 0 {
					resp, err := ix.Search(context.Background(), SearchRequest{Query: q, K: 20})
					if err != nil && err != ErrEmptyIndex {
						t.Errorf("reader knn: %v", err)
						return
					}
					nbs = resp.Neighbors
				} else {
					resp, err := ix.Search(context.Background(), SearchRequest{Query: q, Radius: 0.3})
					if err != nil && err != ErrEmptyIndex {
						t.Errorf("reader range: %v", err)
						return
					}
					nbs = resp.Neighbors
				}
				seen := make(map[int64]bool, len(nbs))
				for _, nb := range nbs {
					if seen[nb.RID] {
						t.Errorf("duplicate rid %d in one result set", nb.RID)
						return
					}
					seen[nb.RID] = true
					if _, ok := acked.Load(nb.RID); !ok {
						t.Errorf("result rid %d was never written", nb.RID)
						return
					}
				}
			}
		}(r)
	}

	// Writers finish first; then stop the readers.
	writeWG.Wait()
	close(done)
	readWG.Wait()

	// Settle maintenance, then verify the final state exactly.
	if err := ix.CompactAll(); err != nil {
		t.Fatal(err)
	}
	st, _ := ix.IngestStats()
	if st.Seals == 0 {
		t.Fatalf("no seal happened during the run (threshold ineffective): %+v", st)
	}
	wantLen := writers * (perWriter - perWriter/10)
	if ix.Len() != wantLen {
		t.Fatalf("final Len %d, want %d", ix.Len(), wantLen)
	}
	if err := ix.Check(); err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	// And the whole run's acknowledged state survives a reopen.
	rec, err := OpenOnline(dir, OnlineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.Len() != wantLen {
		t.Fatalf("recovered Len %d, want %d", rec.Len(), wantLen)
	}
}

// TestOnlineSaveEquivalence pins the legacy-flow equivalence: Save on an
// online index (an implicit full compaction) writes a pagefile a legacy
// Open serves with answers identical to a fresh Build over the live points
// — "open, mutate, Save" and the online flow meet at the same artifact.
func TestOnlineSaveEquivalence(t *testing.T) {
	dir := t.TempDir()
	ix, err := CreateOnline(dir, onlineTestOptions(), OnlineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	live := make(map[int64][]float64)
	for rid := int64(0); rid < 400; rid++ {
		key := randKey(rng, 3)
		if err := ix.Insert(Point{Key: key, RID: rid}); err != nil {
			t.Fatal(err)
		}
		live[rid] = key
	}
	if err := ix.SealActive(); err != nil {
		t.Fatal(err)
	}
	for rid := int64(400); rid < 450; rid++ {
		key := randKey(rng, 3)
		if err := ix.Insert(Point{Key: key, RID: rid}); err != nil {
			t.Fatal(err)
		}
		live[rid] = key
	}
	for rid := int64(0); rid < 30; rid++ {
		if ok, err := ix.Delete(live[rid], rid); err != nil || !ok {
			t.Fatalf("delete %d: ok=%v err=%v", rid, ok, err)
		}
		delete(live, rid)
	}

	path := filepath.Join(t.TempDir(), "saved.idx")
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	saved, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer saved.Close()
	oracle := oracleOver(t, live)
	defer oracle.Close()
	assertSameResults(t, oracle, saved, 31)
}

// TestOnlineIteratorMergesSegments drains a multi-segment incremental scan
// and checks it yields the same global distance order a one-shot k-NN
// reports.
func TestOnlineIteratorMergesSegments(t *testing.T) {
	dir := t.TempDir()
	ix, err := CreateOnline(dir, onlineTestOptions(), OnlineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	rng := rand.New(rand.NewSource(77))
	for rid := int64(0); rid < 300; rid++ {
		if err := ix.Insert(Point{Key: randKey(rng, 3), RID: rid}); err != nil {
			t.Fatal(err)
		}
		if rid == 150 {
			if err := ix.SealActive(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if st, _ := ix.IngestStats(); st.PendingSegments != 1 {
		t.Fatalf("want one pending segment, stats %+v", st)
	}

	q := []float64{0.4, 0.6, 0.5}
	want := knnRIDs(t, ix, q, 40)
	it := ix.SearchIter(q)
	var prev float64
	for i, wantRID := range want {
		nb, ok := it.Next()
		if !ok {
			t.Fatalf("iterator exhausted at %d", i)
		}
		if nb.RID != wantRID {
			t.Fatalf("iterator result %d: rid %d, want %d", i, nb.RID, wantRID)
		}
		if nb.Dist < prev {
			t.Fatalf("iterator went backwards at %d: %v < %v", i, nb.Dist, prev)
		}
		prev = nb.Dist
	}
	// NextWithin honors the radius bound across the merged heads and stays
	// resumable.
	it2 := ix.SearchIter(q)
	if _, ok := it2.NextWithin(0); ok {
		t.Fatal("NextWithin(0) yielded a result")
	}
	if nb, ok := it2.NextWithin(10); !ok || nb.RID != want[0] {
		t.Fatalf("resumed NextWithin: ok=%v rid=%v, want %d", ok, nb.RID, want[0])
	}
}

package blobindex

// One benchmark per table and figure of the paper's evaluation (see the
// per-experiment index in DESIGN.md §3), plus build/query microbenchmarks.
// Each bench reports the paper's headline numbers as custom metrics, so
// `go test -bench=. -benchmem` regenerates the whole evaluation at bench
// scale; cmd/blobbench runs the same experiments with configurable scale
// and full table output.

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"blobindex/internal/am"
	"blobindex/internal/amdb"
	"blobindex/internal/experiments"
	"blobindex/internal/geom"
	"blobindex/internal/gist"
	"blobindex/internal/nn"
	"blobindex/internal/page"
	"blobindex/internal/workload"
)

// benchParams is the reduced scale the benchmarks run at; cmd/blobbench
// defaults to 4× this.
func benchParams() experiments.Params {
	p := experiments.DefaultParams()
	p.Images = 2000
	p.Queries = 64
	return p
}

var bench struct {
	once sync.Once
	s    *experiments.Scenario
	wl   *workload.Workload
	err  error
}

func benchScenario(b *testing.B) *experiments.Scenario {
	b.Helper()
	bench.once.Do(func() {
		bench.s, bench.err = experiments.NewScenario(benchParams())
		if bench.err != nil {
			return
		}
		bench.wl, bench.err = bench.s.Workload()
	})
	if bench.err != nil {
		b.Fatal(bench.err)
	}
	return bench.s
}

// benchTree returns the bulk-loaded tree for the access method, built once.
func benchTree(b *testing.B, kind am.Kind) *gist.Tree {
	b.Helper()
	tree, err := benchScenario(b).Tree(kind, false)
	if err != nil {
		b.Fatal(err)
	}
	return tree
}

// analyze runs a fresh (uncached) amdb analysis so every benchmark
// iteration performs the full workload execution.
func analyze(b *testing.B, tree *gist.Tree, skipOptimal bool) *amdb.Report {
	b.Helper()
	s := benchScenario(b)
	rep, err := amdb.Analyze(tree, bench.wl.Queries, amdb.Config{
		TargetUtil:  s.Params.TargetUtil,
		Seed:        s.Params.Seed + 3,
		SkipOptimal: skipOptimal,
	})
	if err != nil {
		b.Fatal(err)
	}
	return rep
}

// BenchmarkFig6Recall regenerates Figure 6: recall of reduced-dimensionality
// queries against the full Blobworld ranking. Reported metrics: recall at
// 200 returned images for 1-D and 5-D data, and the 5-D/6-D gap the paper
// calls negligible.
func BenchmarkFig6Recall(b *testing.B) {
	s := benchScenario(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(s)
		if err != nil {
			b.Fatal(err)
		}
		at := func(dim, size int) float64 {
			for di, d := range res.Dims {
				if d != dim {
					continue
				}
				for si, sz := range res.Sizes {
					if sz == size {
						return res.Recall[di][si]
					}
				}
			}
			return -1
		}
		b.ReportMetric(at(1, 40), "recall1D@40")
		b.ReportMetric(at(5, 40), "recall5D@40")
		b.ReportMetric(at(6, 40)-at(5, 40), "gap5Dto6D@40")
	}
}

// BenchmarkTable2Losses regenerates Table 2: bulk- vs insertion-loaded
// R-tree losses.
func BenchmarkTable2Losses(b *testing.B) {
	s := benchScenario(b)
	bulk, err := s.Tree(am.KindRTree, false)
	if err != nil {
		b.Fatal(err)
	}
	ins, err := s.Tree(am.KindRTree, true)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bulkRep := analyze(b, bulk, false)
		insRep := analyze(b, ins, false)
		b.ReportMetric(bulkRep.Totals.ExcessLoss, "bulkExcess")
		b.ReportMetric(insRep.Totals.ExcessLoss, "insExcess")
		b.ReportMetric(insRep.Totals.UtilLoss, "insUtil")
		b.ReportMetric(float64(insRep.Totals.LeafIOs)/float64(bulkRep.Totals.LeafIOs), "insOverBulk")
	}
}

// BenchmarkFig7TraditionalLossPct regenerates Figure 7: loss percentages
// for the R-, SR- and SS-tree.
func BenchmarkFig7TraditionalLossPct(b *testing.B) {
	rt := benchTree(b, am.KindRTree)
	sr := benchTree(b, am.KindSRTree)
	ss := benchTree(b, am.KindSSTree)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.ReportMetric(100*analyze(b, rt, false).Totals.ExcessPct(), "rtreeExcess%")
		b.ReportMetric(100*analyze(b, sr, false).Totals.ExcessPct(), "srtreeExcess%")
		b.ReportMetric(100*analyze(b, ss, false).Totals.ExcessPct(), "sstreeExcess%")
	}
}

// BenchmarkFig8TraditionalLossIOs regenerates Figure 8: absolute leaf-level
// losses. The paper's headline: the SS-tree's excess coverage alone exceeds
// the R-tree's total I/Os.
func BenchmarkFig8TraditionalLossIOs(b *testing.B) {
	rt := benchTree(b, am.KindRTree)
	ss := benchTree(b, am.KindSSTree)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rtRep := analyze(b, rt, false)
		ssRep := analyze(b, ss, false)
		b.ReportMetric(rtRep.Totals.ExcessLoss, "rtreeExcessIOs")
		b.ReportMetric(ssRep.Totals.ExcessLoss, "sstreeExcessIOs")
		b.ReportMetric(ssRep.Totals.ExcessLoss/float64(rtRep.Totals.TotalIOs()), "ssExcessOverRTotal")
	}
}

// BenchmarkTable3BPSizes regenerates Table 3: bounding predicate sizes.
func BenchmarkTable3BPSizes(b *testing.B) {
	s := benchScenario(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3(s)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(float64(r.Words), r.AM+"Words")
		}
	}
}

// BenchmarkFig14NewAMLossPct regenerates Figure 14: leaf-level loss
// percentages of the R-tree vs the new access methods.
func BenchmarkFig14NewAMLossPct(b *testing.B) {
	rt := benchTree(b, am.KindRTree)
	amap := benchTree(b, am.KindAMAP)
	jb := benchTree(b, am.KindJB)
	xjb := benchTree(b, am.KindXJB)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.ReportMetric(100*analyze(b, rt, false).Totals.ExcessPct(), "rtreeExcess%")
		b.ReportMetric(100*analyze(b, amap, false).Totals.ExcessPct(), "amapExcess%")
		b.ReportMetric(100*analyze(b, jb, false).Totals.ExcessPct(), "jbExcess%")
		b.ReportMetric(100*analyze(b, xjb, false).Totals.ExcessPct(), "xjbExcess%")
	}
}

// BenchmarkFig15NewAMLossIOs regenerates Figure 15: absolute leaf-level
// losses and leaf I/Os per query for the new access methods.
func BenchmarkFig15NewAMLossIOs(b *testing.B) {
	rt := benchTree(b, am.KindRTree)
	jb := benchTree(b, am.KindJB)
	xjb := benchTree(b, am.KindXJB)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rtRep := analyze(b, rt, false)
		jbRep := analyze(b, jb, false)
		xjbRep := analyze(b, xjb, false)
		b.ReportMetric(rtRep.AvgLeafIOsPerQuery(), "rtreeLeafPerQuery")
		b.ReportMetric(jbRep.AvgLeafIOsPerQuery(), "jbLeafPerQuery")
		b.ReportMetric(xjbRep.AvgLeafIOsPerQuery(), "xjbLeafPerQuery")
		b.ReportMetric(jbRep.Totals.ExcessLoss, "jbExcessIOs")
	}
}

// BenchmarkFig16TotalIOs regenerates Figure 16: total workload I/Os (inner
// plus leaf) for the R-tree vs the new access methods.
func BenchmarkFig16TotalIOs(b *testing.B) {
	rt := benchTree(b, am.KindRTree)
	amap := benchTree(b, am.KindAMAP)
	jb := benchTree(b, am.KindJB)
	xjb := benchTree(b, am.KindXJB)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.ReportMetric(float64(analyze(b, rt, true).Totals.TotalIOs()), "rtreeTotalIOs")
		b.ReportMetric(float64(analyze(b, amap, true).Totals.TotalIOs()), "amapTotalIOs")
		b.ReportMetric(float64(analyze(b, jb, true).Totals.TotalIOs()), "jbTotalIOs")
		b.ReportMetric(float64(analyze(b, xjb, true).Totals.TotalIOs()), "xjbTotalIOs")
	}
}

// BenchmarkScanThreshold regenerates the §3.2/§6 disk-economics checks: the
// random:sequential cost ratio and the fraction of pages a query touches.
func BenchmarkScanThreshold(b *testing.B) {
	s := benchScenario(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Scan(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Ratio, "randToSeqRatio")
		for _, row := range res.Rows {
			if row.AM == string(am.KindXJB) {
				b.ReportMetric(1/row.PagesFraction, "xjbOneInNPages")
				b.ReportMetric(row.Speedup, "xjbSpeedupVsScan")
			}
		}
	}
}

// BenchmarkStructure regenerates the §5/§6 structural observations: tree
// heights per access method.
func BenchmarkStructure(b *testing.B) {
	s := benchScenario(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Structure(s)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(float64(r.Height), r.AM+"Height")
		}
	}
}

// BenchmarkAblationBulkOrder compares STR against a naive sort as the
// bulk-load order (DESIGN.md §4 ablation).
func BenchmarkAblationBulkOrder(b *testing.B) {
	s := benchScenario(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationBulkOrder(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[1].LeafIOs)/float64(rows[0].LeafIOs), "naiveOverSTR")
	}
}

// BenchmarkAblationXJBX sweeps XJB's X (DESIGN.md §4 ablation) and reports
// the automatic selection.
func BenchmarkAblationXJBX(b *testing.B) {
	s := benchScenario(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationXJB(s, []int{2, 10})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.AutoX), "autoX")
		b.ReportMetric(float64(res.Rows[1].LeafIOs), "x10LeafIOs")
	}
}

// BenchmarkBuild measures bulk-load throughput per access method.
func BenchmarkBuild(b *testing.B) {
	s := benchScenario(b)
	pts := workload.Points(s.Reduced(s.Params.Dim))
	for _, kind := range am.Kinds() {
		b.Run(string(kind), func(b *testing.B) {
			ext, err := am.New(kind, am.Options{
				AMAPSamples: 64, // keep the aMAP build bench affordable
				XJBX:        s.Params.XJBX,
			})
			if err != nil {
				b.Fatal(err)
			}
			cfg := gist.Config{Dim: s.Params.Dim, PageSize: s.Params.PageSize}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := gist.BulkLoad(ext, cfg, pts, 1.0); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(pts)*b.N)/b.Elapsed().Seconds(), "points/s")
		})
	}
}

// BenchmarkSearchKNN measures 200-NN query latency per access method on the
// steady-state serving path: the Into search variant with a reused result
// buffer, so -benchmem shows the hot path's true allocation rate.
func BenchmarkSearchKNN(b *testing.B) {
	s := benchScenario(b)
	reduced := s.Reduced(s.Params.Dim)
	rng := rand.New(rand.NewSource(99))
	for _, kind := range am.Kinds() {
		tree := benchTree(b, kind)
		b.Run(string(kind), func(b *testing.B) {
			dst := make([]nn.Result, 0, s.Params.K)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := reduced[rng.Intn(len(reduced))]
				dst, _ = nn.SearchCtxInto(nil, tree, q, s.Params.K, nil, dst[:0])
				if len(dst) != s.Params.K {
					b.Fatalf("got %d results", len(dst))
				}
			}
		})
	}
}

// BenchmarkSearchRange measures range search per access method at each
// query's exact 200th-neighbor radius, with a reused result buffer.
func BenchmarkSearchRange(b *testing.B) {
	s := benchScenario(b)
	reduced := s.Reduced(s.Params.Dim)
	rng := rand.New(rand.NewSource(97))
	queries := make([]geom.Vector, 64)
	for i := range queries {
		queries[i] = reduced[rng.Intn(len(reduced))]
	}
	for _, kind := range am.Kinds() {
		tree := benchTree(b, kind)
		b.Run(string(kind), func(b *testing.B) {
			radii := make([]float64, len(queries))
			var buf []nn.Result
			for i, q := range queries {
				buf, _ = nn.SearchCtxInto(nil, tree, q, s.Params.K, nil, buf[:0])
				if len(buf) == 0 {
					b.Fatal("empty radius probe")
				}
				radii[i] = buf[len(buf)-1].Dist2
			}
			dst := make([]nn.Result, 0, 2*s.Params.K)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				j := i % len(queries)
				dst, _ = nn.RangeCtxInto(nil, tree, queries[j], radii[j], nil, dst[:0])
				if len(dst) < s.Params.K {
					b.Fatalf("got %d results", len(dst))
				}
			}
		})
	}
}

// BenchmarkSearchDFS measures the depth-first (Roussopoulos) k-NN against
// the best-first default; the ratio of their ns/op quantifies what the
// frontier queue buys.
func BenchmarkSearchDFS(b *testing.B) {
	s := benchScenario(b)
	reduced := s.Reduced(s.Params.Dim)
	tree := benchTree(b, am.KindRTree)
	rng := rand.New(rand.NewSource(98))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := reduced[rng.Intn(len(reduced))]
		if res := nn.SearchDFS(tree, q, s.Params.K, nil); len(res) != s.Params.K {
			b.Fatalf("got %d results", len(res))
		}
	}
}

// BenchmarkQualityHarvest measures the production query plan end to end:
// harvest 200 candidates and report the per-AM recall of the full top-40
// (the §2.3 success criterion).
func BenchmarkQualityHarvest(b *testing.B) {
	s := benchScenario(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Quality(s)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.AM == "rtree" || r.AM == "sstree" || r.AM == "xjb" {
				b.ReportMetric(r.Recall, r.AM+"Recall")
			}
		}
	}
}

// BenchmarkCostModel exercises the disk cost model (micro).
func BenchmarkCostModel(b *testing.B) {
	model := page.Barracuda()
	stats := page.IOStats{RandomReads: 100, SequentialReads: 1000}
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += model.TimeMs(stats)
	}
	_ = sink
}

// benchWorkerCounts is {1, GOMAXPROCS}, deduplicated on single-core hosts.
func benchWorkerCounts() []int {
	counts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		counts = append(counts, n)
	}
	return counts
}

// BenchmarkBuildParallelism compares facade Build throughput at one worker
// vs all cores. The resulting trees are byte-identical (see
// TestBuildParallelismDeterministic); only wall time changes.
func BenchmarkBuildParallelism(b *testing.B) {
	s := benchScenario(b)
	reduced := s.Reduced(s.Params.Dim)
	points := make([]Point, len(reduced))
	for i, v := range reduced {
		points[i] = Point{Key: v, RID: int64(i)}
	}
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := Options{Method: RTree, Dim: s.Params.Dim,
				PageSize: s.Params.PageSize, Parallelism: workers}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Build(points, opts); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(points)*b.N)/b.Elapsed().Seconds(), "points/s")
		})
	}
}

// BenchmarkBatchSearchKNN compares the batch query executor at one worker
// vs all cores over the shared workload's query centers.
func BenchmarkBatchSearchKNN(b *testing.B) {
	s := benchScenario(b)
	reduced := s.Reduced(s.Params.Dim)
	points := make([]Point, len(reduced))
	for i, v := range reduced {
		points[i] = Point{Key: v, RID: int64(i)}
	}
	ix, err := Build(points, Options{Method: RTree, Dim: s.Params.Dim,
		PageSize: s.Params.PageSize})
	if err != nil {
		b.Fatal(err)
	}
	queries := make([][]float64, len(bench.wl.Queries))
	for i, q := range bench.wl.Queries {
		queries[i] = q.Center
	}
	ctx := context.Background()
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := ix.BatchSearchKNN(ctx, queries, s.Params.K, workers)
				if err != nil {
					b.Fatal(err)
				}
				if len(res) != len(queries) {
					b.Fatalf("got %d result sets", len(res))
				}
			}
			b.ReportMetric(float64(len(queries)*b.N)/b.Elapsed().Seconds(), "queries/s")
		})
	}
}

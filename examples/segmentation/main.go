// Segmentation: the Blobworld pre-processing of paper Figure 1 on one toy
// image — pixel features, EM grouping with MDL model selection, connected
// components, and per-blob color descriptors — followed by using one of the
// extracted blobs as an index query. The experiments use the statistical
// corpus generator; this example shows the documented pixel-level stages
// actually run.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"blobindex"
)

func main() {
	// A "photograph": 64×48 pixels, four objects, per-pixel 6-D features
	// (color, texture, position), mild sensor noise.
	rng := rand.New(rand.NewSource(99))
	regions, err := blobindex.SegmentImage(64, 48, 4, 0.03, 218, rng.Int63())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("EM segmentation found %d blobs:\n", len(regions))
	for i, r := range regions {
		fmt.Printf("  blob %d: %4d pixels, mean color (%.2f, %.2f, %.2f)\n",
			i, r.Pixels, r.Mean[0], r.Mean[1], r.Mean[2])
	}

	// Index a corpus and query it with the largest extracted blob's
	// histogram — "from pixels to ranked images".
	corpus, err := blobindex.GenerateCorpus(blobindex.CorpusConfig{Images: 800, Seed: 99})
	if err != nil {
		log.Fatal(err)
	}
	reducer, err := blobindex.FitReducer(corpus.Features(), 5)
	if err != nil {
		log.Fatal(err)
	}
	reduced := reducer.ReduceAll(corpus.Features())
	points := make([]blobindex.Point, len(reduced))
	for i, v := range reduced {
		points[i] = blobindex.Point{Key: v, RID: int64(i)}
	}
	idx, err := blobindex.Build(points, blobindex.Options{Method: blobindex.XJB, Dim: 5})
	if err != nil {
		log.Fatal(err)
	}

	largest := regions[0]
	for _, r := range regions[1:] {
		if r.Pixels > largest.Pixels {
			largest = r
		}
	}
	fmt.Printf("\nquerying the index with the %d-pixel blob's histogram...\n", largest.Pixels)
	neighbors := idx.SearchKNN(reducer.Reduce(largest.Histogram), 100)
	blobIDs := make([]int64, len(neighbors))
	for i, n := range neighbors {
		blobIDs[i] = n.RID
	}
	top := corpus.RankImagesAmong(largest.Histogram, blobIDs, 5)
	fmt.Println("closest corpus images:")
	for rank, r := range top {
		fmt.Printf("  %d. image %4d  distance %.5f\n", rank+1, r.Image, r.Dist)
	}
}

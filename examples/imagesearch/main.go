// Imagesearch: the full Blobworld query pipeline of the paper's Figure 2,
// end to end — from a toy pixel-level image through segmentation, feature
// extraction, SVD reduction, access-method candidate retrieval, and
// full-feature-vector re-ranking to a final list of matching images.
package main

import (
	"fmt"
	"log"

	"blobindex"
)

func main() {
	// A corpus standing in for the paper's 35,000-image collection.
	corpus, err := blobindex.GenerateCorpus(blobindex.CorpusConfig{Images: 2000, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	reducer, err := blobindex.FitReducer(corpus.Features(), 5)
	if err != nil {
		log.Fatal(err)
	}
	reduced := reducer.ReduceAll(corpus.Features())

	points := make([]blobindex.Point, len(reduced))
	for i, v := range reduced {
		points[i] = blobindex.Point{Key: v, RID: int64(i)}
	}
	idx, err := blobindex.Build(points, blobindex.Options{Method: blobindex.XJB, Dim: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d blobs from %d images (XJB, height %d)\n",
		idx.Len(), corpus.NumImages(), idx.Stats().Height)

	// The user picks a blob of a sample image as the query (paper Figure 3:
	// "the user selects the blob she is interested in").
	queryBlob := 1234
	queryImage := corpus.ImageOf(queryBlob)
	fmt.Printf("\nquery: blob %d of image %d\n", queryBlob, queryImage)

	// Stage 1 (access method): retrieve a few hundred candidate blobs by
	// nearest-neighbor search over the reduced vectors — the "quick and
	// dirty estimate of the top few hundred" (§2.3).
	candidates := idx.SearchKNN(reducer.Reduce(corpus.Feature(queryBlob)), 200)
	blobIDs := make([]int64, len(candidates))
	for i, c := range candidates {
		blobIDs[i] = c.RID
	}
	fmt.Printf("access method returned %d candidate blobs\n", len(candidates))

	// Stage 2 (Blobworld ranking): re-rank the candidates' images with the
	// quadratic-form distance over the full 218-D feature vectors and show
	// the top matches (paper Figure 4).
	top := corpus.RankImagesAmong(corpus.Feature(queryBlob), blobIDs, 10)
	fmt.Println("\ntop matching images (re-ranked on full feature vectors):")
	for rank, r := range top {
		marker := ""
		if r.Image == queryImage {
			marker = "   <- the query's own image"
		}
		fmt.Printf("  %2d. image %4d  distance %.5f%s\n", rank+1, r.Image, r.Dist, marker)
	}

	// Quality check: how much of the exact full ranking's top-40 did the
	// index-assisted pipeline recover? (paper Figure 6's recall metric)
	reference := corpus.RankImages(corpus.Feature(queryBlob), 40)
	candidateImages := make([]int32, len(candidates))
	for i, c := range candidates {
		candidateImages[i] = corpus.ImageOf(int(c.RID))
	}
	fmt.Printf("\nrecall of the full ranking's top 40: %.2f\n",
		blobindex.Recall(reference, candidateImages))

	// Two-region query (§2.3: "one or two regions of interest"): find
	// images containing blobs like two different query blobs — here, two
	// blobs of the query image, so it should win its own query.
	var second int
	for _, bi := range corpus.BlobsOf(queryImage) {
		if bi != queryBlob {
			second = bi
			break
		}
	}
	if second != 0 {
		two := corpus.RankImagesTwoBlobs(corpus.Feature(queryBlob), corpus.Feature(second), 5)
		fmt.Printf("\ntwo-region query (blobs %d and %d):\n", queryBlob, second)
		for rank, r := range two {
			marker := ""
			if r.Image == queryImage {
				marker = "   <- the query's own image"
			}
			fmt.Printf("  %2d. image %4d  combined distance %.5f%s\n", rank+1, r.Image, r.Dist, marker)
		}
	}
}

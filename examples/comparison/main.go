// Comparison: build all six access methods over the same data set and
// workload and print their amdb loss profiles side by side — a compact
// rerun of the paper's central comparison (Figures 7/8 and 14/15/16).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	"blobindex"
)

func main() {
	corpus, err := blobindex.GenerateCorpus(blobindex.CorpusConfig{Images: 2000, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	reducer, err := blobindex.FitReducer(corpus.Features(), 5)
	if err != nil {
		log.Fatal(err)
	}
	reduced := reducer.ReduceAll(corpus.Features())
	points := make([]blobindex.Point, len(reduced))
	for i, v := range reduced {
		points[i] = blobindex.Point{Key: v, RID: int64(i)}
	}

	// A workload of 200-NN queries with randomly selected blobs as foci,
	// as in paper §3.1.
	rng := rand.New(rand.NewSource(11))
	queries := make([]blobindex.Query, 64)
	for i := range queries {
		queries[i] = blobindex.Query{Center: reduced[rng.Intn(len(reduced))], K: 200}
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "method\theight\tpages\tleaf I/Os\texcess\tutil\tcluster\ttotal I/Os\tavg leaf/query")
	for _, m := range blobindex.Methods() {
		idx, err := blobindex.Build(points, blobindex.Options{Method: m, Dim: 5})
		if err != nil {
			log.Fatal(err)
		}
		a, err := idx.Analyze(queries, blobindex.AnalyzeOptions{Seed: 11})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.0f\t%.0f\t%.0f\t%d\t%.2f\n",
			m, a.Height, a.Pages, a.LeafIOs,
			a.ExcessCoverageLoss, a.UtilizationLoss, a.ClusteringLoss,
			a.TotalIOs, a.AvgLeafIOsPerQuery)
	}
	w.Flush()
	fmt.Println("\nexcess coverage dominates the traditional methods; the paper's JB and")
	fmt.Println("XJB predicates cut it by biting empty volume out of the MBR corners.")
}

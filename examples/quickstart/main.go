// Quickstart: build an XJB index over a small synthetic blob collection and
// run a nearest-neighbor query — the minimal end-to-end use of the public
// blobindex API.
package main

import (
	"fmt"
	"log"

	"blobindex"
)

func main() {
	// 1. Generate a small synthetic Blobworld corpus (images segmented
	//    into blobs with 218-dimensional color histograms).
	corpus, err := blobindex.GenerateCorpus(blobindex.CorpusConfig{Images: 500, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d images, %d blobs, %d-dimensional features\n",
		corpus.NumImages(), corpus.NumBlobs(), len(corpus.Feature(0)))

	// 2. Reduce the features to 5 dimensions with SVD, as the paper does
	//    (218 dimensions are too many to index; 5 retain the neighborhoods).
	reducer, err := blobindex.FitReducer(corpus.Features(), 5)
	if err != nil {
		log.Fatal(err)
	}
	reduced := reducer.ReduceAll(corpus.Features())
	fmt.Printf("5-D SVD captures %.0f%% of feature variance\n",
		100*reducer.ExplainedVariance()[4])

	// 3. Bulk-load an XJB index (the paper's custom access method) over the
	//    reduced vectors.
	points := make([]blobindex.Point, len(reduced))
	for i, v := range reduced {
		points[i] = blobindex.Point{Key: v, RID: int64(i)}
	}
	idx, err := blobindex.Build(points, blobindex.Options{
		Method: blobindex.XJB,
		Dim:    5,
	})
	if err != nil {
		log.Fatal(err)
	}
	st := idx.Stats()
	fmt.Printf("index: %s, %d points, height %d, %d pages (%d leaves)\n",
		st.Method, st.Len, st.Height, st.Pages, st.Leaves)

	// 4. Query: the 10 nearest blobs to blob 0.
	neighbors := idx.SearchKNN(reduced[0], 10)
	fmt.Println("\n10 nearest blobs to blob 0:")
	for rank, n := range neighbors {
		fmt.Printf("  %2d. blob %5d (image %4d)  distance %.5f\n",
			rank+1, n.RID, corpus.ImageOf(int(n.RID)), n.Dist)
	}
}

// Tuning: use the amdb analysis to tailor an access method to a concrete
// data set and workload — the paper's overall methodology (§8: customized
// access methods) — including the automatic selection of XJB's X parameter
// and the improved randomized bite construction of footnote 7.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"blobindex"
)

func main() {
	corpus, err := blobindex.GenerateCorpus(blobindex.CorpusConfig{Images: 5000, Seed: 23})
	if err != nil {
		log.Fatal(err)
	}
	reducer, err := blobindex.FitReducer(corpus.Features(), 5)
	if err != nil {
		log.Fatal(err)
	}
	reduced := reducer.ReduceAll(corpus.Features())
	points := make([]blobindex.Point, len(reduced))
	for i, v := range reduced {
		points[i] = blobindex.Point{Key: v, RID: int64(i)}
	}
	rng := rand.New(rand.NewSource(23))
	queries := make([]blobindex.Query, 48)
	for i := range queries {
		queries[i] = blobindex.Query{Center: reduced[rng.Intn(len(reduced))], K: 200}
	}

	analyze := func(label string, opts blobindex.Options) *blobindex.Analysis {
		idx, err := blobindex.Build(points, opts)
		if err != nil {
			log.Fatal(err)
		}
		a, err := idx.Analyze(queries, blobindex.AnalyzeOptions{Seed: 23, SkipOptimal: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s height=%d  leaf I/Os=%4d  excess=%4.0f  total I/Os=%d\n",
			label, a.Height, a.LeafIOs, a.ExcessCoverageLoss, a.TotalIOs)
		return a
	}

	fmt.Println("step 1: baseline R-tree")
	base := analyze("rtree", blobindex.Options{Method: blobindex.RTree, Dim: 5})

	fmt.Println("\nstep 2: the analysis shows excess coverage dominates, so try the")
	fmt.Println("corner-biting predicates")
	analyze("jb", blobindex.Options{Method: blobindex.JB, Dim: 5})

	fmt.Println("\nstep 3: JB's huge predicates grew the tree; pick the largest X that")
	fmt.Println("keeps the XJB tree short (paper §5.3, automated per §8)")
	x, err := blobindex.AutoX(points, 5, 8192, 32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AutoX selected X = %d\n", x)
	tuned := analyze(fmt.Sprintf("xjb (X=%d)", x),
		blobindex.Options{Method: blobindex.XJB, Dim: 5, XJBBites: x})

	fmt.Println("\nstep 4: rebuild the bites with randomized restarts (footnote 7's")
	fmt.Println("improved construction)")
	improved := analyze(fmt.Sprintf("xjb (X=%d, restarts)", x),
		blobindex.Options{Method: blobindex.XJB, Dim: 5, XJBBites: x, BiteRestarts: 8, Seed: 23})

	fmt.Printf("\nresult: %d → %d leaf I/Os (%.0f%% of the R-tree baseline)\n",
		base.LeafIOs, improved.LeafIOs,
		100*float64(improved.LeafIOs)/float64(base.LeafIOs))
	_ = tuned
}

package blobindex

import (
	"fmt"

	"blobindex/internal/pagefile"
)

// SaveSidecar writes the full-feature side store the refine tier reads: one
// record per (rid, feature) pair — the same RIDs the index holds — plus the
// reducer's projection, so a refined request can carry the full-length query
// and have the index project it exactly as the build pipeline did. pageSize
// 0 uses the index default (8192). The write is crash-atomic, like
// Index.Save.
func SaveSidecar(path string, pageSize int, r *Reducer, rids []int64, features [][]float64) error {
	if r == nil {
		return fmt.Errorf("%w: SaveSidecar requires a fitted Reducer", ErrInvalidOptions)
	}
	if pageSize == 0 {
		pageSize = 8192
	}
	return pagefile.SaveSidecar(path, pageSize, r.pca.Mean, r.pca.Components, rids, features)
}

// AttachRefine opens the sidecar at path and attaches it as the index's
// refine tier: SearchRequest.Refine becomes servable, with full feature
// vectors demand-paged through a pinning pool of poolPages frames (0 means
// DefaultPoolPages). The sidecar must project to the index's dimensionality;
// a mismatch returns ErrDimMismatch. Close releases the attached store along
// with the index.
func (ix *Index) AttachRefine(path string, poolPages int) error {
	if ix.side != nil {
		return fmt.Errorf("%w: refine store already attached", ErrInvalidOptions)
	}
	if poolPages <= 0 {
		poolPages = DefaultPoolPages
	}
	s, err := pagefile.OpenSidecar(path, poolPages)
	if err != nil {
		return err
	}
	if s.IndexDim() != ix.opts.Dim {
		s.Close()
		return fmt.Errorf("%w: sidecar projects to %d dimensions, index has %d",
			ErrDimMismatch, s.IndexDim(), ix.opts.Dim)
	}
	ix.side = s
	return nil
}

// RefineDim returns the full feature dimensionality of the attached refine
// store — the length a refining SearchRequest.Query must have. ok is false
// when no store is attached.
func (ix *Index) RefineDim() (dim int, ok bool) {
	if ix.side == nil {
		return 0, false
	}
	return ix.side.FullDim(), true
}

// RefineLen returns the number of full feature records the attached refine
// store holds; ok is false when no store is attached.
func (ix *Index) RefineLen() (n int, ok bool) {
	if ix.side == nil {
		return 0, false
	}
	return ix.side.Len(), true
}

// RefineStats returns the refine store's buffer pool and retry counters, in
// the same shape as BufferStats. ok is false when no store is attached.
func (ix *Index) RefineStats() (s BufferStats, ok bool) {
	if ix.side == nil {
		return BufferStats{}, false
	}
	ps := ix.side.PoolStats()
	return BufferStats{
		Hits:           ps.Hits,
		Misses:         ps.Misses,
		Evictions:      ps.Evictions,
		Retries:        ps.Retries,
		GaveUp:         ps.GaveUp,
		Prefetched:     ps.Prefetched,
		PrefetchHits:   ps.PrefetchHits,
		PrefetchWasted: ps.PrefetchWasted,
		Resident:       ps.Resident,
		Capacity:       ps.Capacity,
	}, true
}

package blobindex

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"math/rand"
	"testing"
)

// goldenSearchDigest is the SHA-256 of the full facade search behavior —
// k-NN and range result sets (RIDs, distances and keys, in order) for all
// six access methods over a seeded corpus — captured on the pre-SearchRequest
// implementation, where SearchKNN/SearchRange ran their own dedicated paths.
// The unified Search(ctx, SearchRequest) pipeline must reproduce it byte for
// byte: a Refine:false request is contractually bit-identical to what the
// old entry points returned.
const goldenSearchDigest = "49ccb3cc3e00140c04d6cf974cbcefe6b18faf95637603eccbaec2ad89530241"

// goldenCorpus builds the seeded 5-D point set and query workload the digest
// is defined over: mildly clustered coordinates (so JB/XJB bites exist) with
// both k-NN and range queries centered on data points.
func goldenCorpus() (pts []Point, queries [][]float64) {
	const (
		n      = 2400
		dim    = 5
		nQuery = 20
	)
	rng := rand.New(rand.NewSource(20240806))
	pts = make([]Point, n)
	for i := range pts {
		key := make([]float64, dim)
		for d := range key {
			key[d] = math.Floor(rng.Float64()*8)/8 + rng.Float64()*0.125
		}
		pts[i] = Point{Key: key, RID: int64(i)}
	}
	queries = make([][]float64, nQuery)
	for i := range queries {
		q := make([]float64, dim)
		copy(q, pts[rng.Intn(n)].Key)
		queries[i] = q
	}
	return pts, queries
}

// hashNeighbors folds one result set into the digest.
func hashNeighbors(wr func(vals ...uint64), res []Neighbor) {
	wr(uint64(len(res)))
	for _, nb := range res {
		wr(uint64(nb.RID), math.Float64bits(nb.Dist))
		for _, c := range nb.Key {
			wr(math.Float64bits(c))
		}
	}
}

// searchDigest runs the golden workload through the given searchers and
// returns the hex digest.
func searchDigest(t *testing.T, knn func(ix *Index, q []float64, k int) []Neighbor,
	rng func(ix *Index, q []float64, radius float64) []Neighbor) string {
	t.Helper()
	pts, queries := goldenCorpus()
	h := sha256.New()
	wr := func(vals ...uint64) {
		var buf [8]byte
		for _, v := range vals {
			binary.LittleEndian.PutUint64(buf[:], v)
			h.Write(buf[:])
		}
	}
	for _, m := range Methods() {
		ix, err := Build(pts, Options{Method: m, Dim: 5, PageSize: 4096})
		if err != nil {
			t.Fatal(err)
		}
		h.Write([]byte(m))
		for _, q := range queries {
			hashNeighbors(wr, knn(ix, q, 50))
			hashNeighbors(wr, rng(ix, q, 0.2))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestGoldenSearchKNNDigest pins the legacy entry points to the recorded
// pre-refactor behavior.
func TestGoldenSearchKNNDigest(t *testing.T) {
	got := searchDigest(t,
		func(ix *Index, q []float64, k int) []Neighbor { return ix.SearchKNN(q, k) },
		func(ix *Index, q []float64, radius float64) []Neighbor { return ix.SearchRange(q, radius) },
	)
	if got != goldenSearchDigest {
		t.Fatalf("SearchKNN/SearchRange digest drifted:\n got  %s\n want %s", got, goldenSearchDigest)
	}
}

// TestGoldenSearchRequestDigest proves a Refine:false SearchRequest is
// bit-identical to the pre-PR SearchKNN/SearchRange across all six access
// methods: the unified pipeline reproduces the recorded digest exactly.
func TestGoldenSearchRequestDigest(t *testing.T) {
	ctx := context.Background()
	got := searchDigest(t,
		func(ix *Index, q []float64, k int) []Neighbor {
			resp, err := ix.Search(ctx, SearchRequest{Query: q, K: k})
			if err != nil {
				t.Fatal(err)
			}
			return resp.Neighbors
		},
		func(ix *Index, q []float64, radius float64) []Neighbor {
			resp, err := ix.Search(ctx, SearchRequest{Query: q, Radius: radius})
			if err != nil {
				t.Fatal(err)
			}
			return resp.Neighbors
		},
	)
	if got != goldenSearchDigest {
		t.Fatalf("Search(SearchRequest) digest drifted from the pre-refactor recording:\n got  %s\n want %s", got, goldenSearchDigest)
	}
}

package blobindex_test

import (
	"fmt"
	"os"

	"blobindex"
)

// Build an index over a handful of points and query it.
func ExampleBuild() {
	points := []blobindex.Point{
		{Key: []float64{0, 0}, RID: 1},
		{Key: []float64{1, 0}, RID: 2},
		{Key: []float64{0, 1}, RID: 3},
		{Key: []float64{9, 9}, RID: 4},
	}
	idx, err := blobindex.Build(points, blobindex.Options{Method: blobindex.RTree, Dim: 2})
	if err != nil {
		panic(err)
	}
	for _, n := range idx.SearchKNN([]float64{0.1, 0.1}, 2) {
		fmt.Printf("rid=%d dist=%.2f\n", n.RID, n.Dist)
	}
	// Output:
	// rid=1 dist=0.14
	// rid=2 dist=0.91
}

// Stream neighbors lazily until satisfied.
func ExampleIndex_SearchIter() {
	points := []blobindex.Point{
		{Key: []float64{1}, RID: 1},
		{Key: []float64{2}, RID: 2},
		{Key: []float64{4}, RID: 3},
	}
	idx, err := blobindex.Build(points, blobindex.Options{Method: blobindex.XJB, Dim: 1})
	if err != nil {
		panic(err)
	}
	it := idx.SearchIter([]float64{0})
	for {
		n, ok := it.Next()
		if !ok || n.Dist > 3 {
			break
		}
		fmt.Println(n.RID)
	}
	// Output:
	// 1
	// 2
}

// Analyze a workload with the paper's amdb loss metrics.
func ExampleIndex_Analyze() {
	var points []blobindex.Point
	for i := 0; i < 600; i++ {
		points = append(points, blobindex.Point{
			Key: []float64{float64(i % 30), float64(i / 30)},
			RID: int64(i),
		})
	}
	idx, err := blobindex.Build(points, blobindex.Options{Method: blobindex.RTree, Dim: 2, PageSize: 1024})
	if err != nil {
		panic(err)
	}
	queries := []blobindex.Query{
		{Center: []float64{5, 5}, K: 20},
		{Center: []float64{25, 15}, K: 20},
	}
	a, err := idx.Analyze(queries, blobindex.AnalyzeOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println(a.Queries, a.LeafIOs > 0, a.TotalIOs == a.LeafIOs+a.InnerIOs)
	// Output:
	// 2 true true
}

// Persist and reopen an index.
func ExampleOpen() {
	points := []blobindex.Point{
		{Key: []float64{1, 2}, RID: 10},
		{Key: []float64{3, 4}, RID: 11},
	}
	idx, err := blobindex.Build(points, blobindex.Options{Method: blobindex.JB, Dim: 2})
	if err != nil {
		panic(err)
	}
	path := exampleTempDir() + "/demo.idx"
	if err := idx.Save(path); err != nil {
		panic(err)
	}
	loaded, err := blobindex.Open(path)
	if err != nil {
		panic(err)
	}
	fmt.Println(loaded.Len(), loaded.Stats().Method)
	// Output:
	// 2 jb
}

// exampleTempDir gives the examples a writable scratch directory.
func exampleTempDir() string {
	d, err := os.MkdirTemp("", "blobindex-example")
	if err != nil {
		panic(err)
	}
	return d
}
